//! Regenerates **Fig. 3** of the paper: hidden-delay-fault coverage as a
//! function of the maximum FAST frequency, for conventional FAST and for
//! FAST with programmable delay monitors (25 % of outputs, `d = t_nom/3`).
//!
//! The paper shows the curve for one industrial design; the default here is
//! the `p89k` stand-in (the most register-dominated profile). Select
//! another with `FASTMON_CIRCUITS=<name>`.
//!
//! ```text
//! cargo run --release -p fastmon-bench --bin fig3
//! ```

use fastmon_bench::{paper, with_run, ExperimentConfig};

fn main() {
    // With FASTMON_SHARD_PROCS=1 the campaign re-executes this binary
    // once per shard; those children never reach the experiment logic.
    fastmon_bench::shardsup::maybe_run_worker();
    let mut config = ExperimentConfig::from_env();
    if config.circuits.is_empty() {
        config.circuits = vec!["p89k".to_owned()];
    }
    let suite = config.suite();
    let Some((profile, scale)) = suite.into_iter().next() else {
        eprintln!("no circuit matches the FASTMON_CIRCUITS filter");
        std::process::exit(1);
    };

    println!("# Fig. 3 — HDF coverage vs maximum FAST frequency\n");
    println!(
        "circuit: {} stand-in (scale {:.3}, seed {})\n",
        profile.name, scale, config.seed
    );

    let factors: Vec<f64> = (10..=30).map(|i| f64::from(i) / 10.0).collect();
    let series = with_run(
        &profile,
        scale,
        &config,
        |flow, _patterns, analysis, _run| flow.coverage_vs_fmax(analysis, &factors),
    );

    println!("f_max/f_nom, conv_coverage, prop_coverage");
    for p in &series {
        println!(
            "{:.1}, {:.4}, {:.4}",
            p.fmax_factor, p.conv_coverage, p.prop_coverage
        );
    }

    // ascii sketch of both curves
    println!("\ncoverage  (· conventional FAST, # with monitors)");
    let height = 12;
    for row in (0..=height).rev() {
        let y = row as f64 / height as f64;
        let mut line = format!("{:>5.0}% |", y * 100.0);
        for p in &series {
            let conv = (p.conv_coverage * height as f64).round() as usize;
            let prop = (p.prop_coverage * height as f64).round() as usize;
            line.push_str(match (prop == row, conv == row) {
                (true, true) => "*",
                (true, false) => "#",
                (false, true) => "·",
                _ => " ",
            });
            line.push(' ');
        }
        println!("{line}");
    }
    println!("       +{}", "-".repeat(series.len() * 2));
    println!("        1.0x {: >32} 2.0x {: >32} 3.0x", "", "");

    let conv29 = series
        .iter()
        .find(|p| (p.fmax_factor - 2.9).abs() < 1e-9)
        .map_or(f64::NAN, |p| p.conv_coverage);
    let prop30 = series
        .iter()
        .find(|p| (p.fmax_factor - 3.0).abs() < 1e-9)
        .map_or(f64::NAN, |p| p.prop_coverage);
    println!(
        "\nanchors: conv @2.9x = {:.2} (paper ≈ {:.2}); prop @3.0x = {:.2} (paper ≈ {:.2})",
        conv29,
        paper::FIG3_CONV_AT_29,
        prop30,
        paper::FIG3_PROP_AT_30
    );
    fastmon_obs::finish();
}
