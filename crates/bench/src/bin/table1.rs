//! Regenerates **Table I** of the paper: circuit statistics and hidden
//! delay faults detected by conventional FAST vs the proposed
//! monitor-assisted FAST.
//!
//! ```text
//! cargo run --release -p fastmon-bench --bin table1
//! FASTMON_CIRCUITS=s9234,s13207 cargo run --release -p fastmon-bench --bin table1
//! ```

use fastmon_bench::{paper, pct, print_table, with_run, ExperimentConfig};
use fastmon_core::report::table1_row;

fn main() {
    // With FASTMON_SHARD_PROCS=1 the campaign re-executes this binary
    // once per shard; those children never reach the experiment logic.
    fastmon_bench::shardsup::maybe_run_worker();
    let config = ExperimentConfig::from_env();
    println!("# Table I — circuit statistics and targeted hidden delay faults\n");
    println!(
        "(synthetic stand-ins; target ≤ {} gates, ≤ {} sampled faults, seed {})\n",
        config.target_gates, config.max_faults, config.seed
    );

    let headers = [
        "circuit",
        "scale",
        "gates",
        "FFs",
        "|P|",
        "|M|",
        "conv.",
        "prop.",
        "Δ%",
        "|Φ_tar|",
        "paper Δ%",
    ];
    let mut rows = Vec::new();
    for (profile, scale) in config.suite() {
        let row = with_run(
            &profile,
            scale,
            &config,
            |flow, _patterns, analysis, run| {
                let r = table1_row(flow, analysis, run.patterns_len);
                eprintln!(
                    "[table1] {}: atpg {:.1}s analyze {:.1}s",
                    r.circuit, run.phase_secs.0, run.phase_secs.1
                );
                r
            },
        );
        let paper_gain = paper::TABLE1
            .iter()
            .find(|(n, ..)| *n == row.circuit)
            .map_or(f64::NAN, |(_, _, _, g, _)| *g);
        rows.push(vec![
            row.circuit.clone(),
            format!("{scale:.3}"),
            row.gates.to_string(),
            row.flip_flops.to_string(),
            row.patterns.to_string(),
            row.monitors.to_string(),
            row.detected_conv.to_string(),
            row.detected_prop.to_string(),
            pct(row.gain_percent),
            row.targets.to_string(),
            pct(paper_gain),
        ]);
    }
    print_table(&headers, &rows);
    fastmon_obs::finish();
}
