//! Runs every table/figure regenerator in sequence (Fig. 3, Tables I–III),
//! isolating each in its own child process.
//!
//! ```text
//! cargo run --release -p fastmon-bench --bin run_all
//! ```
//!
//! A crashing, failing or hung experiment does **not** abort the campaign:
//! the driver records the outcome (with the tail of the child's stderr) in
//! `RUN_MANIFEST.json`, moves on to the next experiment, and only at the
//! end exits nonzero if anything failed.
//!
//! Timeouts escalate gracefully: every child is handed the per-child
//! timeout as a *soft* deadline (`FASTMON_DEADLINE_SECS`), so a
//! well-behaved child stops cooperatively at a checkpoint boundary and
//! exits with the `cancelled` code — the manifest records it as
//! `cancelled` (artifacts trustworthy). Only a child that also overruns
//! the grace period is killed and recorded as `timed-out` (artifacts
//! suspect). Environment knobs:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `FASTMON_RUN_ALL_BINS` | comma-separated child list (names are resolved next to this binary; entries with a path separator are used verbatim) | `fig3,table1,table2,table3` |
//! | `FASTMON_RUN_ALL_TIMEOUT_SECS` | per-child soft deadline in seconds | `3600` |
//! | `FASTMON_RUN_ALL_GRACE_SECS` | extra seconds a soft-cancelled child gets before being killed | `30` |
//! | `FASTMON_MANIFEST` | manifest output path | `RUN_MANIFEST.json` |
//!
//! `FASTMON_SHARD_PROCS=1` (with `FASTMON_SHARDS=N`) is inherited by every
//! child, so each experiment's campaign runs as `N` supervised shard
//! processes ([`fastmon_bench::shardsup`]); the soft deadline still works —
//! the child's supervisor SIGTERMs its workers, which checkpoint and exit
//! cooperatively.
//!
//! Telemetry: every child runs with `FASTMON_PROFILE_OUT` pointing at a
//! per-child file under `<manifest dir>/fastmon-profiles/`; the driver
//! validates each report against the profile schema and folds it into the
//! child's manifest entry (`"profile"`). When the driver itself is launched
//! with `FASTMON_TRACE=1`, each child additionally gets its own
//! `FASTMON_TRACE_DIR` subdirectory (`<trace dir>/<child>/events.jsonl`)
//! so concurrent event logs never collide.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use fastmon_bench::manifest::{write_manifest, RunOutcome, RunRecord};
use fastmon_bench::EXIT_CANCELLED;

/// How many trailing stderr lines each manifest entry keeps.
const STDERR_TAIL_LINES: usize = 20;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let bins: Vec<String> = match std::env::var("FASTMON_RUN_ALL_BINS") {
        Ok(v) => v
            .split(',')
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .collect(),
        Err(_) => ["fig3", "table1", "table2", "table3"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
    };
    let timeout = Duration::from_secs(
        std::env::var("FASTMON_RUN_ALL_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3600),
    );
    let grace = Duration::from_secs(
        std::env::var("FASTMON_RUN_ALL_GRACE_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30),
    );
    let manifest_path = PathBuf::from(
        std::env::var("FASTMON_MANIFEST").unwrap_or_else(|_| "RUN_MANIFEST.json".into()),
    );

    // Resolving siblings needs our own path; if that fails we fall back to
    // PATH lookup per child instead of giving up on the whole campaign.
    let bin_dir: Option<PathBuf> = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(Path::to_path_buf));

    let profile_dir = manifest_path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map_or_else(
            || PathBuf::from("fastmon-profiles"),
            |p| p.join("fastmon-profiles"),
        );

    let mut records: Vec<RunRecord> = Vec::with_capacity(bins.len());
    for name in &bins {
        println!("\n==================== {name} ====================\n");
        let record = run_child(name, bin_dir.as_deref(), timeout, grace, &profile_dir);
        match &record.outcome {
            RunOutcome::Success => {
                eprintln!("[run_all] {name}: ok ({:.1}s)", record.duration_secs);
            }
            RunOutcome::Failed { exit_code } => {
                eprintln!(
                    "[run_all] {name}: FAILED (exit code {:?}, {:.1}s) — continuing",
                    exit_code, record.duration_secs
                );
            }
            RunOutcome::Cancelled { deadline_secs } => {
                eprintln!(
                    "[run_all] {name}: CANCELLED at the {deadline_secs}s soft deadline \
                     (checkpoint flushed, {:.1}s) — continuing",
                    record.duration_secs
                );
            }
            RunOutcome::TimedOut { limit_secs } => {
                eprintln!(
                    "[run_all] {name}: TIMED OUT after {limit_secs}s + grace (killed) — continuing"
                );
            }
            RunOutcome::LaunchFailed { message } => {
                eprintln!("[run_all] {name}: LAUNCH FAILED ({message}) — continuing");
            }
        }
        records.push(record);
    }

    // Every child has been reaped by now, so RUSAGE_CHILDREN reflects the
    // hungriest experiment of the whole campaign.
    if let Some(bytes) = fastmon_bench::rss::peak_rss_children_bytes() {
        eprintln!(
            "[run_all] peak child RSS across the campaign: {}",
            fastmon_bench::rss::format_mib(bytes)
        );
    }

    let failures: Vec<&RunRecord> = records.iter().filter(|r| !r.outcome.is_success()).collect();
    let mut exit = i32::from(!failures.is_empty());
    match write_manifest(&manifest_path, &records) {
        Ok(()) => {
            eprintln!(
                "[run_all] manifest written to {} ({} run(s), {} failure(s))",
                manifest_path.display(),
                records.len(),
                failures.len()
            );
        }
        Err(e) => {
            eprintln!(
                "[run_all] cannot write manifest {}: {e}",
                manifest_path.display()
            );
            exit = 1;
        }
    }
    for r in &failures {
        eprintln!(
            "[run_all] failed experiment: {} ({})",
            r.name,
            r.outcome.tag()
        );
    }
    exit
}

/// Resolves a child entry: entries containing a path separator are used
/// verbatim; bare names are looked up next to this binary, falling back to
/// the bare name (PATH lookup) if no sibling exists.
fn resolve(name: &str, bin_dir: Option<&Path>) -> PathBuf {
    if name.contains(std::path::MAIN_SEPARATOR) || name.contains('/') {
        return PathBuf::from(name);
    }
    if let Some(dir) = bin_dir {
        let sibling = dir.join(name);
        if sibling.exists() {
            return sibling;
        }
    }
    PathBuf::from(name)
}

/// A child name flattened into a safe file-name component.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// True when the driver itself was launched with tracing on, in which case
/// each child gets a private `FASTMON_TRACE_DIR` subdirectory.
fn tracing_requested() -> bool {
    std::env::var("FASTMON_TRACE").is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false")
    })
}

/// Reads and validates a child's `FASTMON_PROFILE_OUT` report. Returns the
/// raw one-line JSON only if it parses and carries the expected schema
/// version — a half-written or foreign file is dropped, never embedded.
fn read_profile(path: &Path) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let value = fastmon_obs::json::parse(text.trim()).ok()?;
    let version = value
        .get("schema_version")
        .and_then(fastmon_obs::json::Value::as_u64)?;
    if version != u64::from(fastmon_obs::profile::PROFILE_SCHEMA_VERSION) {
        eprintln!(
            "[run_all] {} has profile schema {version}, expected {}; dropping",
            path.display(),
            fastmon_obs::profile::PROFILE_SCHEMA_VERSION
        );
        return None;
    }
    value.get("phases")?;
    Some(text.trim().to_owned())
}

/// Runs one child to completion (or timeout), capturing its stderr tail
/// and per-phase profile report.
fn run_child(
    name: &str,
    bin_dir: Option<&Path>,
    timeout: Duration,
    grace: Duration,
    profile_dir: &Path,
) -> RunRecord {
    let program = resolve(name, bin_dir);
    let profile_path = profile_dir.join(format!("{}.profile.json", sanitize(name)));
    // stale reports from a previous campaign must not be attributed to
    // this run
    let _ = std::fs::remove_file(&profile_path);
    if let Err(e) = std::fs::create_dir_all(profile_dir) {
        eprintln!(
            "[run_all] cannot create profile dir {}: {e}; child profiles disabled",
            profile_dir.display()
        );
    }
    let mut command = Command::new(&program);
    command
        .stdout(Stdio::inherit())
        .stderr(Stdio::piped())
        .env("FASTMON_PROFILE_OUT", &profile_path);
    // Soft-cancel escalation: the child gets the timeout as a cooperative
    // deadline so it can stop at a checkpoint boundary and exit cleanly;
    // the hard kill below only fires after the extra grace period. An
    // explicitly exported FASTMON_DEADLINE_SECS wins over this policy.
    if std::env::var_os("FASTMON_DEADLINE_SECS").is_none() {
        command.env("FASTMON_DEADLINE_SECS", format!("{}", timeout.as_secs()));
    }
    if tracing_requested() {
        let base =
            std::env::var_os("FASTMON_TRACE_DIR").map_or_else(|| PathBuf::from("."), PathBuf::from);
        command.env("FASTMON_TRACE_DIR", base.join(sanitize(name)));
    }
    let start = Instant::now();
    let mut child = match command.spawn() {
        Ok(c) => c,
        Err(e) => {
            return RunRecord {
                name: name.to_owned(),
                outcome: RunOutcome::LaunchFailed {
                    message: format!("{}: {e}", program.display()),
                },
                duration_secs: 0.0,
                stderr_tail: Vec::new(),
                profile: None,
            };
        }
    };

    // Drain the child's stderr on a helper thread: tee it through to our
    // own stderr while keeping a bounded tail for the manifest. Draining
    // concurrently also keeps a chatty child from blocking on a full pipe.
    let (tail_tx, tail_rx) = std::sync::mpsc::channel();
    if let Some(pipe) = child.stderr.take() {
        std::thread::spawn(move || {
            let _ = tail_tx.send(tee_stderr(pipe));
        });
    }

    let mut soft_deadline_logged = false;
    let outcome = loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                break if status.success() {
                    RunOutcome::Success
                } else if status.code() == Some(EXIT_CANCELLED) {
                    RunOutcome::Cancelled {
                        deadline_secs: timeout.as_secs(),
                    }
                } else {
                    RunOutcome::Failed {
                        exit_code: status.code(),
                    }
                };
            }
            Ok(None) => {
                if start.elapsed() > timeout + grace {
                    let _ = child.kill();
                    let _ = child.wait();
                    break RunOutcome::TimedOut {
                        limit_secs: timeout.as_secs(),
                    };
                }
                if start.elapsed() > timeout && !soft_deadline_logged {
                    soft_deadline_logged = true;
                    eprintln!(
                        "[run_all] {name}: past the {}s soft deadline; waiting up to {}s \
                         for a cooperative stop before killing",
                        timeout.as_secs(),
                        grace.as_secs()
                    );
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                break RunOutcome::LaunchFailed {
                    message: format!("wait on {name}: {e}"),
                };
            }
        }
    };
    let duration_secs = start.elapsed().as_secs_f64();

    // Bounded wait: an orphaned grandchild can keep the stderr pipe open
    // after the child is dead/killed, so never block indefinitely on the
    // tee thread (it is detached and dies with the driver).
    let stderr_tail = match tail_rx.recv_timeout(Duration::from_secs(2)) {
        Ok(tail) => tail,
        Err(_) => vec!["<stderr tail unavailable>".to_owned()],
    };

    RunRecord {
        name: name.to_owned(),
        outcome,
        duration_secs,
        stderr_tail,
        profile: read_profile(&profile_path),
    }
}

/// Copies `pipe` to this process's stderr, returning its last
/// [`STDERR_TAIL_LINES`] lines (bounded memory: only the final 16 KiB are
/// retained).
fn tee_stderr(mut pipe: impl std::io::Read) -> Vec<String> {
    const TAIL_BYTES: usize = 16 * 1024;
    let mut tail: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut err = std::io::stderr();
    loop {
        match pipe.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                let _ = err.write_all(&chunk[..n]);
                tail.extend_from_slice(&chunk[..n]);
                if tail.len() > TAIL_BYTES {
                    let cut = tail.len() - TAIL_BYTES;
                    tail.drain(..cut);
                }
            }
        }
    }
    let text = String::from_utf8_lossy(&tail);
    let mut lines: Vec<String> = text
        .lines()
        .rev()
        .take(STDERR_TAIL_LINES)
        .map(str::to_owned)
        .collect();
    lines.reverse();
    lines
}
