//! Runs every table/figure regenerator in sequence (Fig. 3, Tables I–III).
//!
//! ```text
//! cargo run --release -p fastmon-bench --bin run_all
//! ```

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in ["fig3", "table1", "table2", "table3"] {
        println!("\n==================== {bin} ====================\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
}
