//! Multi-process shard execution for the experiment binaries.
//!
//! With `FASTMON_SHARD_PROCS=1` a sharded campaign no longer runs its
//! fault slices in-process: the binary re-executes itself once per shard
//! (`<bin> --shard-worker i/n`) and a supervisor
//! ([`fastmon_core::shardsup`]) babysits the children — newline-JSON
//! heartbeats over the stdout pipe, stall kills, crash respawns with
//! capped exponential backoff, a `/proc`-based RSS watchdog with
//! graceful eviction, and straggler re-dispatch. Each child resumes from
//! its own `shard-i-of-n.ckpt` and lands `shard-i-of-n.result`; the
//! supervisor merges the landed results into a [`DetectionAnalysis`]
//! that is bit-identical to the serial run.
//!
//! Worker processes are a thin protocol shell:
//!
//! * `--shard-worker i/n` (or `FASTMON_SHARD_WORKER=i/n`) routes `main`
//!   into [`maybe_run_worker`] before any experiment logic runs.
//! * The circuit is reconstructed from `FASTMON_SHARD_PROFILE` +
//!   `FASTMON_SHARD_SCALE` (f64 `Display` round-trips exactly) and the
//!   inherited `FASTMON_*` configuration, so the child's campaign
//!   fingerprint matches the supervisor's — any divergence makes the
//!   result file fail validation instead of corrupting the merge.
//! * `SIGTERM` trips a cooperative cancel token that is attached only
//!   *after* ATPG: an RSS eviction always lands at least one band of
//!   durable progress, which is what makes evict/readmit livelock-free.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use fastmon_atpg::TestSet;
use fastmon_core::shardsup::{self, EXIT_EVICTED};
use fastmon_core::{
    CampaignProgress, DetectionAnalysis, FlowError, HdfTestFlow, ShardSpec, ShardsupError,
    SupervisorConfig, SupervisorEvent, SupervisorReport,
};
use fastmon_netlist::generate::paper_suite;
use fastmon_obs::events::shard as shard_events;

use crate::ExperimentConfig;

/// Environment variable that routes a process into the worker entry
/// point (equivalent to the `--shard-worker i/n` flag).
pub const ENV_WORKER: &str = "FASTMON_SHARD_WORKER";
/// Directory holding the shard checkpoint/result files.
pub const ENV_DIR: &str = "FASTMON_SHARD_DIR";
/// Paper-suite profile name the worker reconstructs.
pub const ENV_PROFILE: &str = "FASTMON_SHARD_PROFILE";
/// Scale factor applied to the profile (stringified f64).
pub const ENV_SCALE: &str = "FASTMON_SHARD_SCALE";

/// A supervised multi-process campaign that finished.
#[derive(Debug)]
pub struct SupervisedRun {
    /// The merged analysis (bit-identical to the serial run).
    pub analysis: DetectionAnalysis,
    /// Supervisor counters (spawns, respawns, evictions, ...).
    pub report: SupervisorReport,
    /// The in-process reference fingerprint, when `FASTMON_SHARD_VERIFY=1`
    /// re-ran the campaign with [`HdfTestFlow::try_analyze_sharded`] and
    /// compared (a mismatch is [`SuperviseError::Parity`], not a value
    /// here).
    pub verified_against: Option<u64>,
}

/// Failures of a supervised campaign.
#[derive(Debug)]
pub enum SuperviseError {
    /// The supervisor engine failed (config, launch, budget exhaustion,
    /// cancellation).
    Shardsup(ShardsupError),
    /// Merging or verifying the landed shard results failed.
    Flow(FlowError),
    /// The merged fingerprint diverged from the in-process reference —
    /// a determinism bug, never expected.
    Parity {
        /// Fingerprint of the merged shard results.
        merged: u64,
        /// Fingerprint of the in-process `try_analyze_sharded` reference.
        reference: u64,
    },
}

impl std::fmt::Display for SuperviseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuperviseError::Shardsup(e) => write!(f, "{e}"),
            SuperviseError::Flow(e) => write!(f, "{e}"),
            SuperviseError::Parity { merged, reference } => write!(
                f,
                "merged shard fingerprint {merged:016x} diverged from the \
                 in-process reference {reference:016x}"
            ),
        }
    }
}

impl std::error::Error for SuperviseError {}

/// Routes a process that was exec'd as a shard worker into the worker
/// loop. Call this first in every experiment binary's `main`: when
/// `--shard-worker i/n` is on the command line (or [`ENV_WORKER`] is
/// set) the function never returns — it runs the shard and exits.
pub fn maybe_run_worker() {
    let mut args = std::env::args().skip(1);
    let mut raw = None;
    while let Some(arg) = args.next() {
        if arg == "--shard-worker" {
            raw = args.next();
            break;
        }
    }
    if raw.is_none() {
        raw = std::env::var(ENV_WORKER).ok();
    }
    let Some(raw) = raw else { return };
    match ShardSpec::parse(&raw) {
        Ok(spec) => worker_main(spec),
        Err(e) => {
            eprintln!("[shard-worker] {e}");
            std::process::exit(2);
        }
    }
}

fn env_or(spec: ShardSpec, key: &str) -> String {
    match std::env::var(key) {
        Ok(v) => v,
        Err(_) => worker_fail(spec, &format!("{key} is not set")),
    }
}

/// Emits a `shard_error` heartbeat (so the supervisor's flight recorder
/// sees the reason, not just a nonzero exit) and dies.
fn worker_fail(spec: ShardSpec, message: &str) -> ! {
    println!("{}", shard_events::error(spec.shard, spec.shards, message));
    let _ = std::io::stdout().flush();
    eprintln!("[shard-worker {spec}] {message}");
    std::process::exit(1);
}

/// The worker process: reconstruct the campaign, run this shard to a
/// landed result file, stream band-granularity heartbeats on stdout.
/// Exit codes: `0` landed, [`EXIT_EVICTED`] cooperative stop with the
/// checkpoint resumable, `1` error, `2` unusable configuration.
fn worker_main(spec: ShardSpec) -> ! {
    let ShardSpec { shard, shards } = spec;
    // Handlers go in before any expensive work: a SIGTERM that lands
    // during circuit generation or ATPG must set the drain flag, not
    // kill the process with the default disposition (which the
    // supervisor would charge as a crash instead of an eviction).
    let token = fastmon_obs::CancelToken::new();
    fastmon_daemon::signals::install_drain_handlers();
    {
        let token = token.clone();
        std::thread::spawn(move || loop {
            if fastmon_daemon::signals::drain_requested() {
                token.cancel();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
    }
    let dir = PathBuf::from(env_or(spec, ENV_DIR));
    let profile_name = env_or(spec, ENV_PROFILE);
    let raw_scale = env_or(spec, ENV_SCALE);
    let Ok(scale) = raw_scale.parse::<f64>() else {
        worker_fail(spec, &format!("{ENV_SCALE}={raw_scale:?} is not a number"));
    };
    let config = match ExperimentConfig::try_from_env() {
        Ok(c) => c,
        Err(e) => worker_fail(spec, &e.to_string()),
    };
    let Some(base) = paper_suite().into_iter().find(|p| p.name == profile_name) else {
        worker_fail(spec, &format!("unknown circuit profile {profile_name:?}"));
    };
    let profile = base.scaled(scale);
    let circuit = match profile.generate(config.seed) {
        Ok(c) => c,
        Err(e) => worker_fail(spec, &format!("cannot generate circuit: {e}")),
    };
    let flow = HdfTestFlow::prepare(&circuit, &config.flow_config());
    let patterns = match flow.try_generate_patterns(Some(profile.pattern_budget)) {
        Ok(p) => p,
        Err(e) => worker_fail(spec, &format!("pattern generation failed: {e}")),
    };

    // The token is attached only now — after ATPG — and the campaign
    // observes it strictly *after* each band checkpoint, so even an
    // eviction signal that arrived before the campaign started still
    // banks at least one band of durable progress per evict/readmit
    // cycle. That ordering is what makes RSS eviction livelock-free.
    let flow = flow.with_cancel(token);

    // Chaos knob: FASTMON_SHARD_HANG="<shard>:<flag-path>" silences this
    // worker forever at its first band boundary — once, arbitrated by
    // `create_new` on the flag file — so tests can prove the stall
    // watchdog kills it and the respawn resumes from the checkpoint.
    let hang_flag = std::env::var("FASTMON_SHARD_HANG").ok().and_then(|v| {
        let (who, path) = v.split_once(':')?;
        (who.parse::<usize>().ok()? == shard).then(|| PathBuf::from(path))
    });

    let total = patterns.len();
    let outcome = flow.run_shard_to_result(&patterns, shard, shards, &dir, &mut |progress| {
        let line = match progress {
            CampaignProgress::Resumed { next_pattern, .. } => {
                shard_events::resumed(shard, shards, next_pattern, total)
            }
            CampaignProgress::BandCheckpointed { next_pattern, .. } => {
                if let Some(flag) = &hang_flag {
                    let created = std::fs::OpenOptions::new()
                        .write(true)
                        .create_new(true)
                        .open(flag)
                        .is_ok();
                    if created {
                        loop {
                            std::thread::sleep(std::time::Duration::from_secs(3600));
                        }
                    }
                }
                shard_events::heartbeat(shard, shards, next_pattern, total)
            }
        };
        println!("{line}");
    });
    match outcome {
        Ok(fingerprint) => {
            println!("{}", shard_events::done(shard, shards, fingerprint));
            let _ = std::io::stdout().flush();
            std::process::exit(0);
        }
        Err(FlowError::Cancelled { phase }) => {
            eprintln!("[shard-worker {spec}] cancelled during {phase}; checkpoint is resumable");
            std::process::exit(EXIT_EVICTED);
        }
        Err(e) => worker_fail(spec, &e.to_string()),
    }
}

/// Runs the campaign for `flow`/`patterns` as `config.shards` supervised
/// child processes under `dir` and merges the landed results.
///
/// `worker_bin` overrides the child executable (tests point it at a
/// specific experiment binary); the default is the current executable,
/// whose `main` must call [`maybe_run_worker`] first. `on_event`
/// observes every [`SupervisorEvent`] after the built-in accounting.
///
/// The supervisor inherits the flow's cancel token (a
/// `FASTMON_DEADLINE_SECS` deadline or an explicit
/// [`HdfTestFlow::with_cancel`]) and records its counters in the flow's
/// [`fastmon_obs::MetricsRegistry`] under `robustness.shardsup.*`.
///
/// # Errors
///
/// [`SuperviseError::Shardsup`] when the supervisor fails (unusable
/// `FASTMON_SHARD_*` knobs, a shard exhausting its respawn budget,
/// cancellation), [`SuperviseError::Flow`] when a landed result cannot
/// be loaded or merged, [`SuperviseError::Parity`] when
/// `FASTMON_SHARD_VERIFY=1` finds a fingerprint divergence.
#[allow(clippy::too_many_arguments)]
pub fn supervise(
    flow: &HdfTestFlow<'_>,
    patterns: &TestSet,
    config: &ExperimentConfig,
    profile_name: &str,
    scale: f64,
    dir: &Path,
    worker_bin: Option<&Path>,
    on_event: &mut dyn FnMut(&SupervisorEvent),
) -> Result<SupervisedRun, SuperviseError> {
    let shards = config.shards;
    let sup_config = SupervisorConfig::from_env(shards).map_err(SuperviseError::Shardsup)?;
    let exe = match worker_bin {
        Some(p) => p.to_path_buf(),
        None => std::env::current_exe().map_err(|e| {
            SuperviseError::Shardsup(ShardsupError::Launch {
                shard: 0,
                message: format!("cannot determine the worker executable: {e}"),
            })
        })?,
    };

    let mut launch = |shard: usize, attempt: u32| -> std::io::Result<Child> {
        let mut cmd = Command::new(&exe);
        cmd.arg("--shard-worker")
            .arg(format!("{shard}/{shards}"))
            .env(ENV_DIR, dir)
            .env(ENV_PROFILE, profile_name)
            .env(ENV_SCALE, scale.to_string())
            // The campaign-defining knobs are pinned explicitly so the
            // child's fingerprint matches even when the parent's config
            // did not come from the environment.
            .env("FASTMON_SEED", config.seed.to_string())
            .env("FASTMON_MAX_FAULTS", config.max_faults.to_string())
            .env("FASTMON_TARGET_GATES", config.target_gates.to_string())
            .env(
                "FASTMON_ILP_SECS",
                config.ilp_deadline.as_secs().to_string(),
            )
            .env("FASTMON_SHARDS", shards.to_string())
            // Children never recurse into supervision, never verify, and
            // never race the parent's deadline — the supervisor owns
            // cancellation and SIGTERMs them itself.
            .env_remove("FASTMON_SHARD_PROCS")
            .env_remove("FASTMON_SHARD_VERIFY")
            .env_remove("FASTMON_DEADLINE_SECS")
            .env_remove(ENV_WORKER)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if attempt > 0 {
            // Failpoints are chaos injections for first attempts only: a
            // respawn is the recovery path under test, not a new target.
            cmd.env_remove("FASTMON_FAILPOINTS");
            cmd.env_remove("FASTMON_SHARD_HANG");
        }
        cmd.spawn()
    };
    let mut is_complete = |shard: usize| flow.shard_result_landed(patterns, shard, shards, dir);
    let mut forward = |event: SupervisorEvent| on_event(&event);

    let report = shardsup::run(
        &sup_config,
        &mut launch,
        &mut is_complete,
        &mut forward,
        flow.cancel_token(),
        Some(flow.metrics()),
    )
    .map_err(SuperviseError::Shardsup)?;

    let analysis = flow
        .merge_shard_results(patterns, shards, dir)
        .map_err(SuperviseError::Flow)?;

    let verified_against = if std::env::var("FASTMON_SHARD_VERIFY").is_ok_and(|v| v == "1") {
        let reference = flow
            .try_analyze_sharded(patterns, shards)
            .map_err(SuperviseError::Flow)?
            .result_fingerprint();
        let merged = analysis.result_fingerprint();
        if merged != reference {
            return Err(SuperviseError::Parity { merged, reference });
        }
        Some(reference)
    } else {
        None
    };

    Ok(SupervisedRun {
        analysis,
        report,
        verified_against,
    })
}
