//! Peak-RSS probes for the experiment binaries.
//!
//! Two high-water marks matter for the snapshot artifacts: the probing
//! process's own peak (`VmHWM` from `/proc/self/status`, which captures
//! the campaign's waveform/scratch footprint) and the maximum over all
//! reaped children (`getrusage(RUSAGE_CHILDREN)`, which lets the
//! `run_all` driver record the hungriest experiment of a campaign).
//!
//! The workspace carries no `libc` dependency, so the `getrusage` call is
//! declared directly against the C ABI; both probes degrade to `None` on
//! non-Linux hosts or unparseable procfs rather than failing the run.

/// This process's peak resident-set size in bytes (`VmHWM`), or `None`
/// when the probe is unavailable (non-Linux, unreadable procfs).
#[must_use]
pub fn peak_rss_self_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vmhwm_kib(&status).map(|kib| kib * 1024)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Largest peak resident-set size in bytes over every child this process
/// has waited on, or `None` when the probe is unavailable. On Linux the
/// kernel reports `ru_maxrss` in KiB.
#[must_use]
pub fn peak_rss_children_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        linux::children_maxrss_kib().map(|kib| kib * 1024)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Extracts the `VmHWM` value (in KiB) from a `/proc/<pid>/status` dump.
fn parse_vmhwm_kib(status: &str) -> Option<u64> {
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|v| v.parse().ok())
}

/// `bytes` as a human-readable MiB figure for log lines.
#[must_use]
pub fn format_mib(bytes: u64) -> String {
    format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(target_os = "linux")]
mod linux {
    /// `struct timeval` on 64-bit Linux.
    #[repr(C)]
    #[derive(Default)]
    struct Timeval {
        tv_sec: i64,
        tv_usec: i64,
    }

    /// `struct rusage`: two timevals followed by 14 longs, `ru_maxrss`
    /// first. The trailing longs are padded out so the kernel never
    /// writes past our buffer.
    #[repr(C)]
    #[derive(Default)]
    struct Rusage {
        ru_utime: Timeval,
        ru_stime: Timeval,
        ru_maxrss: i64,
        rest: [i64; 13],
    }

    extern "C" {
        fn getrusage(who: i32, usage: *mut Rusage) -> i32;
    }

    /// `RUSAGE_CHILDREN` from `<sys/resource.h>`.
    const RUSAGE_CHILDREN: i32 = -1;

    /// Peak RSS in KiB over all reaped children.
    pub(super) fn children_maxrss_kib() -> Option<u64> {
        let mut usage = Rusage::default();
        // SAFETY: `usage` is a valid, writable `struct rusage`-layout
        // buffer and RUSAGE_CHILDREN is a documented selector.
        let rc = unsafe { getrusage(RUSAGE_CHILDREN, &mut usage) };
        if rc == 0 {
            u64::try_from(usage.ru_maxrss).ok()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmhwm_parses_from_status_dump() {
        let status = "Name:\tfoo\nVmPeak:\t  999 kB\nVmHWM:\t  12345 kB\nVmRSS:\t 1 kB\n";
        assert_eq!(parse_vmhwm_kib(status), Some(12345));
        assert_eq!(parse_vmhwm_kib("Name:\tfoo\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn self_peak_is_positive_on_linux() {
        let peak = peak_rss_self_bytes();
        assert!(peak.is_some_and(|b| b > 0), "VmHWM probe failed: {peak:?}");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn children_peak_reflects_a_reaped_child() {
        // `true(1)` is tiny but nonzero; after waiting on it the children
        // high-water mark must be > 0.
        let status = std::process::Command::new("true").status();
        if status.is_ok() {
            let peak = peak_rss_children_bytes();
            assert!(peak.is_some_and(|b| b > 0), "children probe: {peak:?}");
        }
    }

    #[test]
    fn mib_formatting() {
        assert_eq!(format_mib(3 * 1024 * 1024), "3.0 MiB");
    }
}
