//! Fault injectors for the chaos-engineering suite.
//!
//! Each helper manufactures one class of hostile input — truncated or
//! cyclic netlists, NaN/negative SDF delays, corrupted checkpoint files —
//! that the flow must survive with a typed error or a documented degraded
//! result, never a panic. The integration suite in
//! `crates/bench/tests/chaos.rs` drives every injector through the public
//! API.

use std::io;
use std::path::Path;

/// A `.bench` netlist with a combinational cycle (`x` and `y` feed each
/// other); [`fastmon_netlist::bench::parse`] must reject it with
/// `NetlistError::CombinationalCycle`.
#[must_use]
pub fn cyclic_bench() -> &'static str {
    "# chaos: combinational cycle\n\
     INPUT(a)\n\
     OUTPUT(z)\n\
     x = AND(a, y)\n\
     y = OR(x, a)\n\
     z = NAND(y, a)\n"
}

/// Truncates a `.bench` netlist mid-file, keeping roughly the first half
/// of its lines — enough to leave dangling net references behind.
#[must_use]
pub fn truncated_bench(text: &str) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let keep = lines.len() / 2;
    let mut out = lines[..keep].join("\n");
    out.push('\n');
    out
}

/// Replaces the first occurrence of `needle` in an SDF document with
/// `poison` — used to smuggle `nan` or negative delays past the
/// serializer.
#[must_use]
pub fn poisoned_sdf(sdf: &str, needle: &str, poison: &str) -> String {
    sdf.replacen(needle, poison, 1)
}

/// Flips `mask` bits of the byte at `offset` in the file at `path`.
///
/// # Errors
///
/// Returns the underlying I/O error, or `InvalidInput` if the file is
/// shorter than `offset + 1` bytes.
pub fn flip_byte(path: &Path, offset: usize, mask: u8) -> io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    let byte = bytes.get_mut(offset).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("offset {offset} out of range"),
        )
    })?;
    *byte ^= mask;
    std::fs::write(path, bytes)
}

/// Truncates the file at `path` to its first `keep` bytes.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn truncate_file(path: &Path, keep: u64) -> io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep)
}

/// A scratch directory under `target/` that is unique per test, created on
/// demand.
///
/// # Panics
///
/// Panics if the directory cannot be created — chaos tests cannot proceed
/// without scratch space.
#[must_use]
pub fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fastmon-chaos-{tag}-{}", std::process::id()));
    match std::fs::create_dir_all(&dir) {
        Ok(()) => dir,
        Err(e) => panic!("cannot create chaos scratch dir {}: {e}", dir.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_bench_is_rejected() {
        let err = fastmon_netlist::bench::parse(cyclic_bench(), "chaos").unwrap_err();
        assert!(
            matches!(
                err,
                fastmon_netlist::NetlistError::CombinationalCycle { .. }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn flip_and_truncate_touch_the_file() {
        let dir = scratch_dir("unit");
        let path = dir.join("f.bin");
        std::fs::write(&path, [1u8, 2, 3, 4]).unwrap();
        flip_byte(&path, 2, 0xff).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![1u8, 2, 0xfc, 4]);
        truncate_file(&path, 2).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![1u8, 2]);
        assert!(flip_byte(&path, 99, 1).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
