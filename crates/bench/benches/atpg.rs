//! Microbenchmarks of the ATPG substrate: bit-parallel fault grading and
//! PODEM.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use fastmon_atpg::{
    podem, transition_faults, AtpgConfig, StuckAtFault, TestPattern, TestSet, WordSim,
};
use fastmon_netlist::generate::GeneratorConfig;
use fastmon_netlist::library;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn bench_atpg(c: &mut Criterion) {
    let mid = GeneratorConfig::new("mid")
        .gates(800)
        .flip_flops(48)
        .inputs(16)
        .outputs(8)
        .depth(14)
        .generate(5)
        .expect("valid generator config");

    // 128 random patterns for grading
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut set = TestSet::new(&mid);
    let w = set.sources().len();
    for _ in 0..128 {
        set.push(TestPattern::new(
            (0..w).map(|_| rng.gen()).collect(),
            (0..w).map(|_| rng.gen()).collect(),
        ));
    }

    c.bench_function("atpg/wordsim_build_800g_128p", |b| {
        b.iter(|| std::hint::black_box(WordSim::new(&mid, &set)))
    });

    let ws = WordSim::new(&mid, &set);
    let faults = transition_faults(&mid);
    c.bench_function("atpg/grade_1600_faults", |b| {
        b.iter(|| {
            let mut detected = 0usize;
            for f in &faults {
                for blk in 0..ws.num_blocks() {
                    if ws.detect_word(f, blk) != 0 {
                        detected += 1;
                        break;
                    }
                }
            }
            std::hint::black_box(detected)
        })
    });

    let s27 = library::s27();
    let target = s27.find("G11").expect("s27 has G11");
    c.bench_function("atpg/podem_s27", |b| {
        b.iter(|| {
            std::hint::black_box(podem(
                &s27,
                &StuckAtFault {
                    node: target,
                    stuck_at: false,
                },
                1000,
            ))
        })
    });

    c.bench_function("atpg/generate_s27_full", |b| {
        b.iter(|| std::hint::black_box(fastmon_atpg::generate(&s27, &AtpgConfig::default())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(2));
    targets = bench_atpg
}
criterion_main!(benches);
