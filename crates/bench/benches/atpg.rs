//! Microbenchmarks of the ATPG substrate: bit-parallel fault grading
//! (cached-cone vs per-call traversal, serial vs fault-parallel matrix
//! builds, word-level vs bit-level compaction) and PODEM.
//!
//! Set `FASTMON_BENCH_QUICK=1` for a smoke run (CI): tiny sample counts
//! that still exercise every hot path end to end.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use fastmon_atpg::{
    podem, transition_faults, AtpgConfig, DetectionMatrix, FaultCones, GradeScratch, StuckAtFault,
    TestPattern, TestSet, WordSim,
};
use fastmon_netlist::generate::GeneratorConfig;
use fastmon_netlist::library;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// The bit-level reverse-order compaction the word-level scan replaced,
/// kept here as the benchmark baseline.
fn reverse_order_compaction_bitwise(m: &DetectionMatrix) -> Vec<usize> {
    let mut remaining: Vec<bool> = (0..m.num_faults()).map(|f| m.fault_detected(f)).collect();
    let mut kept = Vec::new();
    for p in (0..m.num_patterns()).rev() {
        let mut useful = false;
        for (f, rem) in remaining.iter_mut().enumerate() {
            if *rem && m.detects(f, p) {
                useful = true;
                *rem = false;
            }
        }
        if useful {
            kept.push(p);
        }
    }
    kept.reverse();
    kept
}

fn bench_atpg(c: &mut Criterion) {
    let mid = GeneratorConfig::new("mid")
        .gates(800)
        .flip_flops(48)
        .inputs(16)
        .outputs(8)
        .depth(14)
        .generate(5)
        .expect("valid generator config");

    // 128 random patterns for grading
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut set = TestSet::new(&mid);
    let w = set.sources().len();
    for _ in 0..128 {
        set.push(TestPattern::new(
            (0..w).map(|_| rng.gen()).collect(),
            (0..w).map(|_| rng.gen()).collect(),
        ));
    }

    c.bench_function("atpg/wordsim_build_800g_128p", |b| {
        b.iter(|| std::hint::black_box(WordSim::new(&mid, &set)))
    });

    let ws = WordSim::new(&mid, &set);
    let faults = transition_faults(&mid);
    let cones = FaultCones::build(&mid, &faults);

    c.bench_function("atpg/grade_1600_faults_uncached", |b| {
        b.iter(|| {
            let mut detected = 0usize;
            for f in &faults {
                for blk in 0..ws.num_blocks() {
                    if ws.detect_word(f, blk) != 0 {
                        detected += 1;
                        break;
                    }
                }
            }
            std::hint::black_box(detected)
        })
    });

    c.bench_function("atpg/grade_1600_faults_cached", |b| {
        let mut scratch = GradeScratch::for_cones(&cones);
        b.iter(|| {
            let mut detected = 0usize;
            for f in &faults {
                for blk in 0..ws.num_blocks() {
                    if ws.detect_word_cached(f, blk, &cones, &mut scratch) != 0 {
                        detected += 1;
                        break;
                    }
                }
            }
            std::hint::black_box(detected)
        })
    });

    c.bench_function("atpg/cone_arena_build_800g", |b| {
        b.iter(|| std::hint::black_box(FaultCones::build(&mid, &faults)))
    });

    c.bench_function("atpg/matrix_build_t1", |b| {
        b.iter(|| {
            std::hint::black_box(DetectionMatrix::build_with(
                &mid, &set, &faults, &cones, 1, None,
            ))
        })
    });

    c.bench_function("atpg/matrix_build_t4", |b| {
        b.iter(|| {
            std::hint::black_box(DetectionMatrix::build_with(
                &mid, &set, &faults, &cones, 4, None,
            ))
        })
    });

    let matrix = DetectionMatrix::build_with(&mid, &set, &faults, &cones, 1, None);
    c.bench_function("atpg/compaction_word_level", |b| {
        b.iter(|| std::hint::black_box(matrix.reverse_order_compaction()))
    });

    c.bench_function("atpg/compaction_bitwise", |b| {
        b.iter(|| std::hint::black_box(reverse_order_compaction_bitwise(&matrix)))
    });

    c.bench_function("atpg/select_patterns_vs_rebuild", |b| {
        let kept = matrix.reverse_order_compaction();
        b.iter(|| std::hint::black_box(matrix.select_patterns(&kept)))
    });

    let s27 = library::s27();
    let target = s27.find("G11").expect("s27 has G11");
    c.bench_function("atpg/podem_s27", |b| {
        b.iter(|| {
            std::hint::black_box(podem(
                &s27,
                &StuckAtFault {
                    node: target,
                    stuck_at: false,
                },
                1000,
            ))
        })
    });

    c.bench_function("atpg/generate_s27_full", |b| {
        b.iter(|| std::hint::black_box(fastmon_atpg::generate(&s27, &AtpgConfig::default())))
    });
}

/// Smoke mode for CI: same code paths, tiny time budget.
fn config() -> Criterion {
    if std::env::var("FASTMON_BENCH_QUICK").is_ok_and(|v| v != "0") {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(200))
            .warm_up_time(Duration::from_millis(50))
    } else {
        Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_secs(8))
            .warm_up_time(Duration::from_secs(2))
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_atpg
}
criterion_main!(benches);
