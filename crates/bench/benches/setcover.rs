//! Microbenchmarks of the 0-1 set-cover solvers (the paper's ILP core).

use criterion::{criterion_group, criterion_main, Criterion};
use fastmon_ilp::{greedy, reduce, BranchBound, SetCover};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

fn random_instance(elements: usize, sets: usize, density: f64, seed: u64) -> SetCover {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let family: Vec<Vec<u32>> = (0..sets)
        .map(|_| {
            (0..elements as u32)
                .filter(|_| rng.gen_bool(density))
                .collect()
        })
        .collect();
    SetCover::new(elements, family)
}

fn bench_setcover(c: &mut Criterion) {
    let small = random_instance(60, 40, 0.12, 1);
    let medium = random_instance(400, 120, 0.05, 2);

    c.bench_function("setcover/greedy_400x120", |b| {
        b.iter(|| std::hint::black_box(greedy(&medium)))
    });
    c.bench_function("setcover/reduce_400x120", |b| {
        b.iter(|| std::hint::black_box(reduce(&medium)))
    });
    c.bench_function("setcover/bb_exact_60x40", |b| {
        let solver = BranchBound::new().with_deadline(Duration::from_secs(5));
        b.iter(|| std::hint::black_box(solver.solve(&small)))
    });
    c.bench_function("setcover/bb_deadline_400x120", |b| {
        let solver = BranchBound::new().with_deadline(Duration::from_millis(30));
        b.iter(|| std::hint::black_box(solver.solve(&medium)))
    });
}

criterion_group!(benches, bench_setcover);
criterion_main!(benches);
