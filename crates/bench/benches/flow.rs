//! End-to-end flow benchmarks: the full paper pipeline on small circuits
//! (the table regenerators cover the large ones).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use fastmon_core::{FlowConfig, HdfTestFlow, Solver};
use fastmon_netlist::generate::GeneratorConfig;
use fastmon_netlist::library;

fn bench_flow(c: &mut Criterion) {
    let s27 = library::s27();
    c.bench_function("flow/end_to_end_s27", |b| {
        b.iter(|| {
            let flow = HdfTestFlow::prepare(&s27, &FlowConfig::default());
            let patterns = flow.generate_patterns(None);
            let analysis = flow.analyze(&patterns);
            std::hint::black_box(flow.schedule(&analysis, Solver::Ilp))
        })
    });

    let small = GeneratorConfig::new("small")
        .gates(300)
        .flip_flops(24)
        .inputs(12)
        .outputs(6)
        .depth(12)
        .generate(7)
        .expect("valid generator config");
    let flow = HdfTestFlow::prepare(&small, &FlowConfig::default());
    let patterns = flow.generate_patterns(Some(48));

    c.bench_function("flow/analyze_300g_48p", |b| {
        b.iter(|| std::hint::black_box(flow.analyze(&patterns)))
    });

    // thread scaling of the fault-simulation campaign: same circuit and
    // patterns, explicit worker counts
    for threads in [1usize, 4, 8] {
        let config = FlowConfig {
            threads,
            ..FlowConfig::default()
        };
        let flow_t = HdfTestFlow::prepare(&small, &config);
        c.bench_function(format!("flow/analyze_300g_48p_t{threads}"), |b| {
            b.iter(|| std::hint::black_box(flow_t.analyze(&patterns)))
        });
    }

    let analysis = flow.analyze(&patterns);
    c.bench_function("flow/schedule_ilp_300g", |b| {
        b.iter(|| std::hint::black_box(flow.schedule(&analysis, Solver::Ilp)))
    });
    c.bench_function("flow/schedule_greedy_300g", |b| {
        b.iter(|| std::hint::black_box(flow.schedule(&analysis, Solver::Greedy)))
    });
    c.bench_function("flow/fig3_sweep_300g", |b| {
        let factors: Vec<f64> = (10..=30).map(|i| f64::from(i) / 10.0).collect();
        b.iter(|| std::hint::black_box(flow.coverage_vs_fmax(&analysis, &factors)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(2));
    targets = bench_flow
}
criterion_main!(benches);
