//! Disabled-path overhead guard for `fastmon-obs`.
//!
//! Runs the same s27 campaign (fault-sim + ILP schedule) twice: once with
//! tracing forced [`Off`](fastmon_obs::TraceMode::Off) — the production
//! default, where every `span!` must collapse to a single relaxed atomic
//! load — and once in [`Profile`](fastmon_obs::TraceMode::Profile) mode.
//! The `off` number is the baseline; if it ever drifts more than a couple
//! of percent from historical values (or the `off`/`profile` gap inverts),
//! the disabled path has stopped being free.
//!
//! ```text
//! cargo bench -p fastmon-bench --bench obs_overhead
//! ```

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use fastmon_core::{FlowConfig, HdfTestFlow, Solver};
use fastmon_netlist::library;

fn campaign(circuit: &fastmon_netlist::Circuit) -> usize {
    let flow = HdfTestFlow::prepare(circuit, &FlowConfig::default());
    let patterns = flow.generate_patterns(None);
    let analysis = flow.analyze(&patterns);
    let plan = flow.schedule(&analysis, Solver::Ilp);
    analysis.targets.len() + plan.entries.len()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let circuit = library::s27();

    // Baseline: tracing disabled — the path every production run takes
    // unless FASTMON_TRACE / FASTMON_PROFILE is set.
    fastmon_obs::force_enable(fastmon_obs::TraceMode::Off, None);
    c.bench_function("obs/s27_flow_trace_off", |b| {
        b.iter(|| std::hint::black_box(campaign(&circuit)))
    });

    // Spans timed and aggregated in-process, no JSONL I/O.
    fastmon_obs::force_enable(fastmon_obs::TraceMode::Profile, None);
    c.bench_function("obs/s27_flow_profile", |b| {
        b.iter(|| std::hint::black_box(campaign(&circuit)))
    });

    // Leave the process in the disabled state for any later benches.
    fastmon_obs::force_enable(fastmon_obs::TraceMode::Off, None);

    // Failpoints share the disabled-path contract: with no schedule
    // configured, `fire()` must stay one relaxed load + predictable branch.
    fastmon_obs::failpoints::clear();
    c.bench_function("obs/failpoint_fire_disabled", |b| {
        b.iter(|| {
            for _ in 0..1024 {
                std::hint::black_box(fastmon_obs::failpoints::fire("campaign_band")).ok();
            }
        })
    });

    // And the end-to-end guard: the whole campaign with the failpoint
    // subsystem disarmed must match the trace-off baseline above.
    c.bench_function("obs/s27_flow_failpoints_disabled", |b| {
        b.iter(|| std::hint::black_box(campaign(&circuit)))
    });

    // Latency histograms are always on (no disabled path to guard), so
    // the record path itself must stay cheap: one branch chain to the
    // bucket index plus three relaxed atomics. This is the number the
    // flow pays per band / checkpoint / job event.
    let hist = fastmon_obs::Histogram::new();
    let mut v: u64 = 0x9e37_79b9_7f4a_7c15;
    c.bench_function("obs/histogram_record", |b| {
        b.iter(|| {
            for _ in 0..1024 {
                // xorshift keeps the value stream unpredictable so the
                // branch to the bucket index is not trivially learned.
                v ^= v << 13;
                v ^= v >> 7;
                v ^= v << 17;
                hist.record(std::hint::black_box(v >> 24));
            }
        })
    });

    // Reading quantiles scans all buckets; it runs per observe request,
    // so it only needs to be "not silly", not free.
    c.bench_function("obs/histogram_quantiles", |b| {
        b.iter(|| std::hint::black_box(hist.quantiles()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(2));
    targets = bench_obs_overhead
}
criterion_main!(benches);
