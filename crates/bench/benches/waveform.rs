//! Microbenchmarks of the waveform simulator: full two-vector simulation
//! and cone-restricted fault injection on an s27-scale and a synthetic
//! mid-size circuit.

use criterion::{criterion_group, criterion_main, Criterion};
use fastmon_faults::{Polarity, SmallDelayFault};
use fastmon_netlist::generate::GeneratorConfig;
use fastmon_netlist::{library, PinRef};
use fastmon_sim::{ConePlan, ConeScratch, SimEngine, Stimulus};
use fastmon_timing::{DelayAnnotation, DelayModel};

fn bench_waveform(c: &mut Criterion) {
    let s27 = library::s27();
    let annot27 = DelayAnnotation::with_variation(&s27, &DelayModel::nangate45_like(), 0.2, 1);
    let engine27 = SimEngine::new(&s27, &annot27);
    let stim27 = Stimulus::from_fn(&s27, |id| (id.index() % 3 == 0, id.index() % 2 == 0));

    c.bench_function("waveform/simulate_s27", |b| {
        b.iter(|| std::hint::black_box(engine27.simulate(&stim27)))
    });

    let mid = GeneratorConfig::new("mid")
        .gates(1000)
        .flip_flops(64)
        .inputs(16)
        .outputs(8)
        .depth(16)
        .generate(3)
        .expect("valid generator config");
    let annot = DelayAnnotation::with_variation(&mid, &DelayModel::nangate45_like(), 0.2, 1);
    let engine = SimEngine::new(&mid, &annot);
    let stim = Stimulus::from_fn(&mid, |id| (id.index() % 3 == 0, id.index() % 2 == 0));

    c.bench_function("waveform/simulate_1000g", |b| {
        b.iter(|| std::hint::black_box(engine.simulate(&stim)))
    });

    let base = engine.simulate(&stim);
    let seed = mid
        .combinational_nodes()
        .find(|&g| mid.level(g) <= 2)
        .expect("a shallow gate exists");
    let fault = SmallDelayFault::new(PinRef::Output(seed), Polarity::SlowToRise, 25.0);
    let plan = ConePlan::new(&mid, seed);
    c.bench_function("waveform/fault_cone_1000g", |b| {
        let mut scratch = ConeScratch::new(&mid);
        b.iter(|| {
            std::hint::black_box(engine.response_diff_planned(
                &base,
                &fault,
                &plan,
                &mut scratch,
                1000.0,
            ))
        })
    });
}

criterion_group!(benches, bench_waveform);
criterion_main!(benches);
