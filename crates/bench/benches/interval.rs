//! Microbenchmarks of the interval-set kernels (detection-range algebra).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fastmon_faults::{Interval, IntervalSet};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn random_set(rng: &mut ChaCha8Rng, n: usize) -> IntervalSet {
    IntervalSet::from_intervals((0..n).map(|_| {
        let s: f64 = rng.gen_range(0.0..1000.0);
        Interval::new(s, s + rng.gen_range(0.1..20.0))
    }))
}

fn bench_interval(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let a = random_set(&mut rng, 64);
    let b = random_set(&mut rng, 64);

    c.bench_function("interval/union_64x64", |bench| {
        bench.iter(|| std::hint::black_box(a.union(&b)))
    });
    c.bench_function("interval/intersection_64x64", |bench| {
        bench.iter(|| std::hint::black_box(a.intersection(&b)))
    });
    c.bench_function("interval/shift_clip_filter", |bench| {
        bench.iter(|| {
            std::hint::black_box(a.shifted(100.0).clipped(150.0, 900.0).filter_glitches(2.0))
        })
    });
    c.bench_function("interval/contains", |bench| {
        bench.iter(|| std::hint::black_box(a.contains(512.5)))
    });
    c.bench_function("interval/insert_1000", |bench| {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        bench.iter_batched(
            IntervalSet::new,
            |mut set| {
                for _ in 0..1000 {
                    let s: f64 = rng.gen_range(0.0..1000.0);
                    set.insert(Interval::new(s, s + 3.0));
                }
                set
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_interval);
criterion_main!(benches);
