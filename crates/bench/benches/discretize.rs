//! Microbenchmarks of the observation-time discretization (Sec. IV-A).

use criterion::{criterion_group, criterion_main, Criterion};
use fastmon_core::{discretize, elementary_intervals};
use fastmon_faults::{Interval, IntervalSet};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn random_ranges(n: usize, seed: u64) -> Vec<IntervalSet> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(1..4);
            IntervalSet::from_intervals((0..k).map(|_| {
                let s: f64 = rng.gen_range(100.0..900.0);
                Interval::new(s, s + rng.gen_range(5.0..80.0))
            }))
        })
        .collect()
}

fn bench_discretize(c: &mut Criterion) {
    for n in [100usize, 1000] {
        let ranges = random_ranges(n, 42);
        c.bench_function(format!("discretize/candidates_{n}"), |b| {
            b.iter(|| std::hint::black_box(discretize(&ranges)))
        });
        c.bench_function(format!("discretize/elementary_{n}"), |b| {
            b.iter(|| std::hint::black_box(elementary_intervals(&ranges)))
        });
    }
}

criterion_group!(benches, bench_discretize);
criterion_main!(benches);
