//! Wall-clock benches for the two dominant campaign phases: the
//! word-parallel band loop of `analyze()` (1 vs 4 worker threads on a
//! scaled `p89k` stand-in) and the testability-guided PODEM inside
//! `generate()`.
//!
//! The band pair is the regression tripwire for the per-worker scratch
//! rework: before it, the 4-thread run allocated ~2× the waveforms of the
//! single-thread run and was *slower* on a serial host; after it both
//! counts are flat and t4 ≤ t1. The PODEM bench runs the guided engine
//! end to end and prints its backtracks-per-call ratio so a guidance
//! regression (SCOAP ordering or static learning going stale) shows up in
//! the bench log even when the timing noise hides it.
//!
//! Set `FASTMON_BENCH_QUICK=1` for a smoke run (CI): tiny sample counts
//! that still exercise every hot path end to end.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use fastmon_atpg::AtpgConfig;
use fastmon_core::{FlowConfig, HdfTestFlow};
use fastmon_netlist::generate::{CircuitProfile, GeneratorConfig};

fn flow_config(threads: usize) -> FlowConfig {
    FlowConfig {
        threads,
        max_faults: Some(1_500),
        ..FlowConfig::default()
    }
}

fn bench_band_scaling(c: &mut Criterion) {
    let profile = CircuitProfile::named("p89k")
        .expect("p89k is a built-in paper profile")
        .scaled(1_500.0 / 88_000.0);
    let circuit = profile.generate(1).expect("profile generates");
    let base = HdfTestFlow::prepare(&circuit, &flow_config(1));
    let patterns = base.generate_patterns(Some(16));

    for threads in [1usize, 4] {
        let flow = HdfTestFlow::prepare(&circuit, &flow_config(threads));
        c.bench_function(format!("band/analyze_p89k_t{threads}"), |b| {
            b.iter(|| std::hint::black_box(flow.analyze(&patterns)))
        });
        let allocs = flow.metrics().sim.waveform_allocs.get();
        let reuses = flow.metrics().sim.waveform_reuses.get();
        eprintln!(
            "band/analyze_p89k_t{threads}: {allocs} waveform allocs, {reuses} reuses \
             (cumulative over all bench iterations)"
        );
    }

    let mid = GeneratorConfig::new("mid")
        .gates(800)
        .flip_flops(48)
        .inputs(16)
        .outputs(8)
        .depth(14)
        .generate(5)
        .expect("valid generator config");

    c.bench_function("podem/generate_guided_mid800", |b| {
        b.iter(|| std::hint::black_box(fastmon_atpg::generate(&mid, &AtpgConfig::default())))
    });

    // One instrumented run outside the timing loop: the backtracks/call
    // ratio is the quantity the SCOAP + static-learning guidance halved;
    // log it so bench output records the guidance level, not just time.
    let metrics = fastmon_obs::AtpgMetrics::new();
    let result = fastmon_atpg::generate_with_metrics(&mid, &AtpgConfig::default(), Some(&metrics));
    let calls = metrics.podem_calls.get().max(1);
    eprintln!(
        "podem/generate_guided_mid800: {} backtracks over {} calls ({:.1}/call), \
         {} aborts, {} learned-untestable, {} detected",
        metrics.podem_backtracks.get(),
        calls,
        metrics.podem_backtracks.get() as f64 / calls as f64,
        metrics.podem_aborts.get(),
        metrics.podem_learned_untestable.get(),
        result.detected,
    );
}

/// Smoke mode for CI: same code paths, tiny time budget.
fn config() -> Criterion {
    if std::env::var("FASTMON_BENCH_QUICK").is_ok_and(|v| v != "0") {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(200))
            .warm_up_time(Duration::from_millis(50))
    } else {
        Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_secs(8))
            .warm_up_time(Duration::from_secs(2))
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_band_scaling
}
criterion_main!(benches);
