//! Thread-scaling invariants of the fault-simulation campaign, exercised
//! on the paper-suite profile path (a scaled `p89k` stand-in — the same
//! route `perf_snapshot` and the table regenerators take).
//!
//! Two properties are pinned:
//!
//! 1. **Bit-identity**: `analyze()` at 1, 2, 4 and 8 threads produces the
//!    same verdicts, detection ranges and target set. The band loop's
//!    fixed `(pattern, chunk)` merge order guarantees this by
//!    construction; this test keeps it true.
//! 2. **Allocation flatness**: the per-worker scratch pool and spare bank
//!    keep `waveform_allocs` within 2× of the single-thread figure at any
//!    thread count (plus a small per-worker additive slack for hosts with
//!    real parallelism, where each worker legitimately owns one scratch
//!    set). The pre-rework engine allocated per *band*, which doubled the
//!    count from 1 to 4 threads on the p89k profile.

use fastmon_core::{FlowConfig, HdfTestFlow};
use fastmon_netlist::generate::CircuitProfile;

fn flow_config(threads: usize) -> FlowConfig {
    FlowConfig {
        threads,
        max_faults: Some(1_500),
        ..FlowConfig::default()
    }
}

#[test]
fn analysis_is_bit_identical_and_alloc_flat_across_thread_counts() {
    let profile = CircuitProfile::named("p89k")
        .expect("p89k is a built-in paper profile")
        .scaled(1_500.0 / 88_000.0);
    let circuit = profile.generate(1).expect("profile generates");

    let base = HdfTestFlow::prepare(&circuit, &flow_config(1));
    let patterns = base.generate_patterns(Some(16));
    assert!(!patterns.is_empty());

    let reference = base.analyze(&patterns);
    let t1 = &base.metrics().sim;
    let t1_allocs = t1.waveform_allocs.get();

    // Profile-path wiring proof: the campaign built propagation plans and
    // ran the word-parallel screen. `nodes_pruned_unobserved` is
    // legitimately 0 here — every gate of a generated netlist reaches an
    // output or flip-flop, so there is nothing to prune; `cone_plans_built`
    // is the counter that proves the plan/pruning pass actually executed.
    assert!(t1.cone_plans_built.get() > 0, "plan builds must be counted");
    assert!(t1.screen_walks.get() > 0, "screen must run on this path");
    assert!(t1.cones_simulated.get() > 0);

    for threads in [2usize, 4, 8] {
        let flow = HdfTestFlow::prepare(&circuit, &flow_config(threads));
        let analysis = flow.analyze(&patterns);

        assert_eq!(
            analysis.verdicts, reference.verdicts,
            "threads={threads}: verdicts drifted"
        );
        assert_eq!(
            analysis.targets, reference.targets,
            "threads={threads}: target set drifted"
        );
        assert_eq!(
            analysis.per_pattern, reference.per_pattern,
            "threads={threads}: per-pattern detection ranges drifted"
        );
        assert_eq!(
            analysis.raw_union, reference.raw_union,
            "threads={threads}: union ranges drifted"
        );
        assert_eq!(
            analysis.conv_range, reference.conv_range,
            "threads={threads}: conventional ranges drifted"
        );
        assert_eq!(
            analysis.fast_range, reference.fast_range,
            "threads={threads}: monitor ranges drifted"
        );

        let allocs = flow.metrics().sim.waveform_allocs.get();
        let budget = t1_allocs * 2 + (threads as u64) * 8;
        assert!(
            allocs <= budget,
            "threads={threads}: {allocs} waveform allocs exceeds budget {budget} \
             (single-thread baseline {t1_allocs})"
        );
    }
}
