//! Shard-merge determinism: a campaign partitioned into N contiguous
//! fault shards and merged must be bit-identical (same
//! `result_fingerprint`) to the single-process serial run, for any shard
//! count, any thread count, and through the crash-safe per-shard
//! checkpoint path.

use fastmon_core::{DetectionAnalysis, FlowConfig, FlowError, HdfTestFlow};
use fastmon_netlist::generate::GeneratorConfig;
use fastmon_netlist::Circuit;

fn random_circuit(seed: u64) -> Circuit {
    GeneratorConfig::new("shards")
        .gates(100 + (seed as usize % 3) * 40)
        .flip_flops(8)
        .inputs(7)
        .outputs(3)
        .depth(6)
        .generate(seed)
        .expect("valid generator config")
}

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "fastmon-shard-{tag}-{}-{}",
        std::process::id(),
        fastmon_obs::run_id(),
    ))
}

#[test]
fn sharded_runs_match_serial_for_any_shard_and_thread_count() {
    for seed in 1..=3u64 {
        let circuit = random_circuit(seed);
        let flow = HdfTestFlow::prepare(
            &circuit,
            &FlowConfig {
                seed,
                ..FlowConfig::default()
            },
        );
        let patterns = flow.generate_patterns(Some(10));
        let serial = flow.try_analyze(&patterns).unwrap();
        let golden = serial.result_fingerprint();
        for shards in [1usize, 2, 4, 7] {
            let merged = flow.try_analyze_sharded(&patterns, shards).unwrap();
            assert_eq!(merged.num_faults(), serial.num_faults());
            assert_eq!(merged.num_patterns, serial.num_patterns);
            assert_eq!(
                merged.result_fingerprint(),
                golden,
                "seed={seed} shards={shards}: sharded merge diverged from serial run"
            );
        }
        // a different thread count on the sharded side must not matter
        let threaded = HdfTestFlow::prepare(
            &circuit,
            &FlowConfig {
                seed,
                threads: 8,
                ..FlowConfig::default()
            },
        );
        let merged = threaded.try_analyze_sharded(&patterns, 4).unwrap();
        assert_eq!(merged.result_fingerprint(), golden, "seed={seed} threads=8");
    }
}

#[test]
fn resumable_sharded_campaign_matches_and_cleans_up() {
    let circuit = random_circuit(9);
    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    let patterns = flow.generate_patterns(Some(8));
    let golden = flow.try_analyze(&patterns).unwrap().result_fingerprint();

    let dir = tmp("resume");
    std::fs::create_dir_all(&dir).unwrap();
    let mut events_per_shard = vec![0usize; 3];
    let merged = flow
        .analyze_sharded_resumable_observed(&patterns, 3, &dir, &mut |shard, _| {
            events_per_shard[shard] += 1;
        })
        .unwrap();
    assert_eq!(merged.result_fingerprint(), golden);
    assert!(
        events_per_shard.iter().all(|&n| n > 0),
        "every shard must surface progress events: {events_per_shard:?}"
    );
    // finished shard checkpoints are removed
    for shard in 0..3 {
        assert!(
            !dir.join(format!("shard-{shard}-of-3.ckpt")).exists(),
            "shard {shard} left its checkpoint behind"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_rejects_mismatched_pattern_counts() {
    let circuit = random_circuit(11);
    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    let p8 = flow.generate_patterns(Some(8));
    let p5 = flow.generate_patterns(Some(5));
    let a = flow.try_analyze_shard(&p8, 0, 2).unwrap();
    let b = flow.try_analyze_shard(&p5, 1, 2).unwrap();
    match DetectionAnalysis::merge([a, b]) {
        Err(FlowError::ShardMerge {
            shard,
            got,
            expected,
        }) => {
            assert_eq!(shard, 1);
            assert_eq!(got, p5.len());
            assert_eq!(expected, p8.len());
        }
        other => panic!("expected ShardMerge error, got {other:?}"),
    }
}

#[test]
fn merging_nothing_yields_the_empty_analysis() {
    let merged = DetectionAnalysis::merge([]).unwrap();
    assert_eq!(merged.num_faults(), 0);
    assert_eq!(merged.num_patterns, 0);
    assert!(merged.targets.is_empty());
}

#[test]
fn landed_shard_results_merge_bit_identical_and_are_idempotent() {
    let circuit = random_circuit(13);
    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    let patterns = flow.generate_patterns(Some(8));
    let golden = flow.try_analyze(&patterns).unwrap().result_fingerprint();
    let dir = tmp("results");
    std::fs::create_dir_all(&dir).unwrap();
    for shard in 0..3 {
        let fp = flow
            .run_shard_to_result(&patterns, shard, 3, &dir, &mut |_| {})
            .unwrap();
        assert_eq!(fp, flow.shard_fingerprint(&patterns, shard, 3));
        assert!(flow.shard_result_landed(&patterns, shard, 3, &dir));
        // the finished checkpoint is cleared, the result file remains
        assert!(!HdfTestFlow::shard_checkpoint_path(&dir, shard, 3).exists());
        // re-dispatch after landing is free: nothing is re-simulated
        let again = flow
            .run_shard_to_result(&patterns, shard, 3, &dir, &mut |_| {})
            .unwrap();
        assert_eq!(again, fp);
    }
    let merged = flow.merge_shard_results(&patterns, 3, &dir).unwrap();
    assert_eq!(
        merged.result_fingerprint(),
        golden,
        "merge of landed shard results diverged from the serial run"
    );
    // a missing shard result is a typed, shard-attributed error
    std::fs::remove_file(HdfTestFlow::shard_result_path(&dir, 1, 3)).unwrap();
    match flow.merge_shard_results(&patterns, 3, &dir) {
        Err(FlowError::ShardResult { shard: 1, .. }) => {}
        other => panic!("expected ShardResult error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merging_a_single_part_is_identity() {
    let circuit = random_circuit(5);
    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    let patterns = flow.generate_patterns(Some(6));
    let serial = flow.try_analyze(&patterns).unwrap();
    let golden = serial.result_fingerprint();
    let num_faults = serial.num_faults();
    let merged = DetectionAnalysis::merge([serial]).unwrap();
    assert_eq!(merged.num_faults(), num_faults);
    assert_eq!(merged.result_fingerprint(), golden);
}

/// Serial golden fingerprint plus the 8 per-shard analyses, computed
/// once — the property below exercises merge *groupings*, which are
/// pure data-plumbing, so 128 cases stay cheap.
fn split_fixture() -> &'static (u64, Vec<DetectionAnalysis>) {
    static FIX: std::sync::OnceLock<(u64, Vec<DetectionAnalysis>)> = std::sync::OnceLock::new();
    FIX.get_or_init(|| {
        let circuit = random_circuit(7);
        let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
        let patterns = flow.generate_patterns(Some(6));
        let golden = flow.try_analyze(&patterns).unwrap().result_fingerprint();
        let parts = (0..8)
            .map(|shard| flow.try_analyze_shard(&patterns, shard, 8).unwrap())
            .collect();
        (golden, parts)
    })
}

use proptest::prelude::*;

proptest! {
    // Merge is associative: any contiguous grouping of the shard parts,
    // merged group-by-group and then merged again, is bit-identical to
    // the flat merge (and to the serial run). `mask` bit `i` cuts the
    // partition between shard `i` and `i+1`.
    #[test]
    fn merge_of_merges_over_random_splits_matches_serial(mask in any::<u8>()) {
        let (golden, parts) = split_fixture();
        let mut groups: Vec<Vec<DetectionAnalysis>> = vec![Vec::new()];
        for (i, part) in parts.iter().cloned().enumerate() {
            groups.last_mut().unwrap().push(part);
            if i + 1 < parts.len() && mask & (1 << i) != 0 {
                groups.push(Vec::new());
            }
        }
        let merged_groups: Vec<DetectionAnalysis> = groups
            .into_iter()
            .map(|g| DetectionAnalysis::merge(g).unwrap())
            .collect();
        let merged = DetectionAnalysis::merge(merged_groups).unwrap();
        prop_assert_eq!(merged.result_fingerprint(), *golden);
    }
}
