//! Supervisor engine tests against fake `/bin/sh` workers: crash
//! respawn with backoff, budget exhaustion, stall detection, RSS
//! eviction + readmission, straggler re-dispatch and restart resume —
//! all without simulating a single fault.

#![cfg(unix)]

use std::cell::RefCell;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use fastmon_core::shardsup::{self, ShardsupError, SupervisorConfig, SupervisorEvent};
use fastmon_obs::MetricsRegistry;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fastmon-shardsup-{tag}-{}-{}",
        std::process::id(),
        fastmon_obs::run_id(),
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sh(script: &str) -> io::Result<Child> {
    Command::new("/bin/sh")
        .arg("-c")
        .arg(script)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
}

fn flag(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("done-{shard}"))
}

/// A config with test-friendly timings (no minute-scale defaults).
fn fast_config(shards: usize, jobs: usize) -> SupervisorConfig {
    let mut config = SupervisorConfig::new(shards);
    config.jobs = jobs;
    config.stall_timeout = Duration::from_secs(10);
    config.backoff = Duration::from_millis(1);
    config.backoff_cap = Duration::from_millis(10);
    config.poll_interval = Duration::from_millis(10);
    config.rss_poll_interval = Duration::from_millis(50);
    config
}

#[test]
fn happy_path_completes_every_shard_once() {
    let dir = tmp("happy");
    let metrics = MetricsRegistry::new();
    let report = shardsup::run(
        &fast_config(4, 2),
        &mut |shard, _attempt| {
            sh(&format!(
                "echo '{}'; touch {}",
                fastmon_obs::events::shard::heartbeat(shard, 4, 0, 1),
                flag(&dir, shard).display()
            ))
        },
        &mut |shard| flag(&dir, shard).exists(),
        &mut |_| {},
        None,
        Some(&metrics),
    )
    .unwrap();
    assert_eq!(report.workers_spawned, 4);
    assert_eq!(report.shards_completed, 4);
    assert_eq!(report.respawns, 0);
    assert!(report.heartbeats_received >= 4);
    assert_eq!(metrics.shardsup.workers_spawned.get(), 4);
    assert_eq!(metrics.shardsup.shards_completed.get(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crashed_shard_is_respawned_and_the_rest_keep_running() {
    let dir = tmp("crash");
    let mut events = Vec::new();
    let report = shardsup::run(
        &fast_config(2, 2),
        &mut |shard, attempt| {
            if shard == 1 && attempt == 0 {
                // first attempt dies without landing anything
                sh("exit 3")
            } else {
                sh(&format!(
                    "echo '{{}}'; touch {}",
                    flag(&dir, shard).display()
                ))
            }
        },
        &mut |shard| flag(&dir, shard).exists(),
        &mut |e| events.push(e),
        None,
        None,
    )
    .unwrap();
    assert_eq!(report.shards_completed, 2);
    assert_eq!(report.respawns, 1);
    assert_eq!(report.workers_spawned, 3);
    assert!(events
        .iter()
        .any(|e| matches!(e, SupervisorEvent::Crashed { shard: 1, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, SupervisorEvent::Backoff { shard: 1, .. })));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn respawn_budget_exhaustion_fails_the_shard() {
    let mut config = fast_config(1, 1);
    config.max_respawns = 1;
    let err = shardsup::run(
        &config,
        &mut |_, _| sh("exit 7"),
        &mut |_| false,
        &mut |_| {},
        None,
        None,
    )
    .unwrap_err();
    match err {
        ShardsupError::ShardFailed {
            shard,
            attempts,
            last,
        } => {
            assert_eq!(shard, 0);
            assert_eq!(attempts, 2); // first run + one respawn
            assert!(last.contains('7'), "unexpected status: {last}");
        }
        other => panic!("expected ShardFailed, got {other}"),
    }
}

#[test]
fn silent_worker_is_stall_killed_and_the_respawn_finishes() {
    let dir = tmp("stall");
    let mut config = fast_config(1, 1);
    config.stall_timeout = Duration::from_millis(300);
    let metrics = MetricsRegistry::new();
    let mut events = Vec::new();
    let report = shardsup::run(
        &config,
        &mut |shard, attempt| {
            if attempt == 0 {
                // hangs forever without a single heartbeat
                sh("exec sleep 60")
            } else {
                sh(&format!(
                    "echo '{{}}'; touch {}",
                    flag(&dir, shard).display()
                ))
            }
        },
        &mut |shard| flag(&dir, shard).exists(),
        &mut |e| events.push(e),
        None,
        Some(&metrics),
    )
    .unwrap();
    assert_eq!(report.stalls_detected, 1);
    assert_eq!(report.respawns, 1, "a stall kill charges the retry budget");
    assert_eq!(report.shards_completed, 1);
    assert_eq!(metrics.shardsup.stalls_detected.get(), 1);
    assert!(events
        .iter()
        .any(|e| matches!(e, SupervisorEvent::Stalled { shard: 0, .. })));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rss_eviction_is_graceful_and_uncharged() {
    let dir = tmp("evict");
    let mut config = fast_config(1, 1);
    config.rss_limit_bytes = Some(1); // any live process exceeds this
    let launches = RefCell::new(0u32);
    let mut events = Vec::new();
    let report = shardsup::run(
        &config,
        &mut |shard, _attempt| {
            let n = {
                let mut l = launches.borrow_mut();
                *l += 1;
                *l
            };
            if n == 1 {
                // Cooperative worker: on SIGTERM it "checkpoints"
                // (nothing here) and exits with the eviction code —
                // without landing a result, so it must be re-admitted.
                sh("trap 'exit 75' TERM; echo '{}'; while :; do sleep 0.05; done")
            } else {
                // Re-admitted attempt lands before the next RSS poll.
                sh(&format!(
                    "echo '{{}}'; touch {}",
                    flag(&dir, shard).display()
                ))
            }
        },
        &mut |shard| flag(&dir, shard).exists(),
        &mut |e| events.push(e),
        None,
        None,
    )
    .unwrap();
    assert!(report.rss_evictions >= 1);
    assert_eq!(report.readmissions, 1);
    assert_eq!(report.respawns, 0, "an eviction must not charge the budget");
    assert_eq!(report.shards_completed, 1);
    assert!(events
        .iter()
        .any(|e| matches!(e, SupervisorEvent::RssEvicted { shard: 0, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, SupervisorEvent::Readmitted { shard: 0 })));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn last_shard_straggler_is_redispatched_once() {
    let dir = tmp("straggler");
    let mut config = fast_config(2, 2);
    config.straggler_factor = 1.0;
    let launches = RefCell::new([0u32; 2]);
    let report = shardsup::run(
        &config,
        &mut |shard, _attempt| {
            let n = {
                let mut l = launches.borrow_mut();
                l[shard] += 1;
                l[shard]
            };
            if shard == 1 && n == 1 {
                // heartbeats forever (never stalls) but never finishes
                sh("while :; do echo '{}'; sleep 0.02; done")
            } else {
                sh(&format!(
                    "echo '{{}}'; touch {}",
                    flag(&dir, shard).display()
                ))
            }
        },
        &mut |shard| flag(&dir, shard).exists(),
        &mut |_| {},
        None,
        None,
    )
    .unwrap();
    assert_eq!(report.stragglers_redispatched, 1);
    assert_eq!(
        report.respawns, 0,
        "a re-dispatch must not charge the budget"
    );
    assert_eq!(report.shards_completed, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn already_landed_shards_are_not_respawned_after_a_supervisor_restart() {
    let report = shardsup::run(
        &fast_config(3, 3),
        &mut |_, _| panic!("nothing should be launched"),
        &mut |_| true,
        &mut |_| {},
        None,
        None,
    )
    .unwrap();
    assert_eq!(report.workers_spawned, 0);
    assert_eq!(report.shards_completed, 3);
}

#[test]
fn cancellation_terminates_children_and_surfaces_typed() {
    let token = fastmon_obs::CancelToken::new();
    token.cancel();
    let err = shardsup::run(
        &fast_config(2, 2),
        &mut |_, _| sh("exec sleep 60"),
        &mut |_| false,
        &mut |_| {},
        Some(&token),
        None,
    )
    .unwrap_err();
    assert!(matches!(err, ShardsupError::Cancelled { .. }));
}

#[test]
fn shard_count_parsing_is_strict() {
    assert_eq!(
        shardsup::parse_shard_count("FASTMON_SHARDS", "8").unwrap(),
        8
    );
    assert_eq!(
        shardsup::parse_shard_count("FASTMON_SHARDS", " 4096 ").unwrap(),
        4096
    );
    for bad in ["0", "-1", "banana", "", "4097", "1e3"] {
        let err = shardsup::parse_shard_count("FASTMON_SHARDS", bad).unwrap_err();
        match err {
            ShardsupError::Config { key, value, .. } => {
                assert_eq!(key, "FASTMON_SHARDS");
                assert_eq!(value, bad, "error must carry the offending string");
            }
            other => panic!("expected Config error for {bad:?}, got {other}"),
        }
    }
}

#[test]
fn shard_spec_round_trips_and_rejects_garbage() {
    let spec = fastmon_core::ShardSpec::parse("3/8").unwrap();
    assert_eq!((spec.shard, spec.shards), (3, 8));
    assert_eq!(spec.to_string(), "3/8");
    for bad in ["8/8", "3", "3/0", "a/b", "3/4097"] {
        assert!(
            fastmon_core::ShardSpec::parse(bad).is_err(),
            "{bad:?} must be rejected"
        );
    }
}
