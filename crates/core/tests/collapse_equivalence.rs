//! Bit-identity oracle for structural fault collapsing: the campaign
//! simulates only one representative per equivalence class and fans the
//! results back, so every fault's per-pattern detection ranges must equal
//! an independent fault-by-fault re-simulation through the slow
//! (unplanned, uncollapsed, unscreened) path — bitwise, not approximately.

use fastmon_core::{FlowConfig, HdfTestFlow};
use fastmon_faults::{DetectionRange, FaultClasses};
use fastmon_netlist::generate::GeneratorConfig;
use fastmon_netlist::Circuit;
use fastmon_sim::SimEngine;

fn random_circuit(seed: u64) -> Circuit {
    GeneratorConfig::new("collapse")
        .gates(80 + (seed as usize % 4) * 30)
        .flip_flops(6 + (seed as usize % 3) * 2)
        .inputs(6)
        .outputs(3)
        .depth(5 + (seed % 3) as u32)
        .generate(seed)
        .expect("valid generator config")
}

#[test]
fn collapsed_campaign_matches_slow_path_per_fault() {
    let mut collapsed_total = 0usize;
    for seed in 1..=4u64 {
        let circuit = random_circuit(seed);
        let config = FlowConfig {
            seed,
            ..FlowConfig::default()
        };
        let flow = HdfTestFlow::prepare(&circuit, &config);
        let patterns = flow.generate_patterns(Some(12));
        let analysis = flow.analyze(&patterns);

        let classes = FaultClasses::build(&circuit, flow.candidate_faults());
        collapsed_total += classes.collapsed_away();
        assert_eq!(
            flow.metrics().sim.faults_collapsed.get(),
            classes.collapsed_away() as u64,
            "seed={seed}: campaign must report the collapse it performed"
        );

        // slow-path oracle: every fault against every pattern, no cone
        // plans, no screening, no collapsing
        let engine = SimEngine::new(&circuit, flow.annotation());
        let t_nom = flow.clock().t_nom;
        let glitch = config.glitch_threshold;
        for p in 0..patterns.len() {
            let base = engine.simulate(&patterns.stimulus(&circuit, p));
            for (fid, fault) in flow.candidate_faults().iter() {
                let mut expected = DetectionRange::new();
                for (op, set) in engine.response_diff(&base, fault, t_nom) {
                    expected.push(op, set.clipped(0.0, t_nom).filter_glitches(glitch));
                }
                let got = analysis.per_pattern[fid.index()]
                    .iter()
                    .find(|(pp, _)| *pp as usize == p)
                    .map(|(_, dr)| dr);
                match got {
                    Some(dr) => assert_eq!(
                        dr, &expected,
                        "seed={seed} fault={fid} pattern={p}: collapsed campaign \
                         diverges from slow-path oracle"
                    ),
                    None => assert!(
                        expected.is_empty(),
                        "seed={seed} fault={fid} pattern={p}: campaign missed a detection"
                    ),
                }
            }
        }

        // raw unions are exactly the per-pattern merges
        for (fid, _) in flow.candidate_faults().iter() {
            let mut union = DetectionRange::new();
            for (_, dr) in &analysis.per_pattern[fid.index()] {
                union.merge(dr);
            }
            assert_eq!(
                union,
                analysis.raw_union[fid.index()],
                "seed={seed} fault={fid}"
            );
        }
    }
    assert!(
        collapsed_total > 0,
        "random netlists must exercise at least one non-singleton class"
    );
}

#[test]
fn class_members_share_identical_outcomes() {
    for seed in [5u64, 6] {
        let circuit = random_circuit(seed);
        let flow = HdfTestFlow::prepare(
            &circuit,
            &FlowConfig {
                seed,
                ..FlowConfig::default()
            },
        );
        let patterns = flow.generate_patterns(Some(10));
        let analysis = flow.analyze(&patterns);
        let classes = FaultClasses::build(&circuit, flow.candidate_faults());
        for i in 0..classes.num_faults() {
            if !classes.is_representative(i) {
                continue;
            }
            for &m in classes.members_of(i) {
                let m = m as usize;
                assert_eq!(analysis.per_pattern[m], analysis.per_pattern[i]);
                assert_eq!(analysis.raw_union[m], analysis.raw_union[i]);
                assert_eq!(analysis.verdicts[m], analysis.verdicts[i]);
            }
        }
    }
}
