use fastmon_faults::{Interval, IntervalSet};
use fastmon_timing::Time;

/// Computes the elementary intervals of a family of detection ranges: the
/// boundaries of all intervals partition the time axis, and each cell is
/// annotated with the number of ranges covering it (the fault counts shown
/// on top of Fig. 5 of the paper).
///
/// Cells covered by no range are omitted.
#[must_use]
pub fn elementary_intervals(ranges: &[IntervalSet]) -> Vec<(Interval, usize)> {
    // sweep over +1/-1 events
    let mut events: Vec<(Time, i32)> = Vec::new();
    for set in ranges {
        for iv in set.iter() {
            events.push((iv.start, 1));
            events.push((iv.end, -1));
        }
    }
    if events.is_empty() {
        return Vec::new();
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out = Vec::new();
    let mut active = 0i32;
    let mut i = 0usize;
    while i < events.len() {
        let t = events[i].0;
        while i < events.len() && events[i].0 == t {
            active += events[i].1;
            i += 1;
        }
        if i < events.len() {
            let next = events[i].0;
            if active > 0 && next > t {
                out.push((Interval::new(t, next), active as usize));
            }
        }
    }
    out
}

/// Observation-time discretization (Sec. IV-A of the paper): every fault
/// nominates the mid-point of the most-populated elementary interval inside
/// its detection range; the deduplicated nominations are the candidate test
/// clock periods.
///
/// Mid-points are chosen "to cover the targeted faults robustly even under
/// variations". Every fault with a non-empty range is guaranteed to be
/// covered by at least one returned candidate.
///
/// # Example
///
/// ```
/// use fastmon_core::discretize;
/// use fastmon_faults::{Interval, IntervalSet};
///
/// let ranges = vec![
///     IntervalSet::from_intervals([Interval::new(0.0, 4.0)]),
///     IntervalSet::from_intervals([Interval::new(2.0, 6.0)]),
/// ];
/// let candidates = discretize(&ranges);
/// // the overlap cell [2, 4) detects both faults: its midpoint suffices
/// assert_eq!(candidates, vec![3.0]);
/// ```
#[must_use]
pub fn discretize(ranges: &[IntervalSet]) -> Vec<Time> {
    let cells = elementary_intervals(ranges);
    if cells.is_empty() {
        return Vec::new();
    }
    let starts: Vec<Time> = cells.iter().map(|(iv, _)| iv.start).collect();

    let mut candidates: Vec<Time> = Vec::new();
    for set in ranges {
        if set.is_empty() {
            continue;
        }
        let mut best: Option<(usize, Time)> = None; // (count, midpoint)
        for iv in set.iter() {
            // first cell that could overlap iv
            let mut idx = starts.partition_point(|&s| s < iv.start);
            if idx > 0 && cells[idx - 1].0.end > iv.start {
                idx -= 1;
            }
            while idx < cells.len() && cells[idx].0.start < iv.end {
                let (cell, count) = &cells[idx];
                let lo = cell.start.max(iv.start);
                let hi = cell.end.min(iv.end);
                if lo < hi {
                    let mid = 0.5 * (lo + hi);
                    match best {
                        Some((c, _)) if c >= *count => {}
                        _ => best = Some((*count, mid)),
                    }
                }
                idx += 1;
            }
        }
        if let Some((_, mid)) = best {
            candidates.push(mid);
        }
    }
    candidates.sort_by(Time::total_cmp);
    candidates.dedup();
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ivs: &[(f64, f64)]) -> IntervalSet {
        IntervalSet::from_intervals(ivs.iter().map(|&(a, b)| Interval::new(a, b)))
    }

    #[test]
    fn fig5_style_example() {
        // three faults as in Fig. 5: boundaries split the axis, the most
        // populated cells get picked
        let ranges = vec![set(&[(1.0, 5.0)]), set(&[(3.0, 8.0)]), set(&[(6.0, 9.0)])];
        let cells = elementary_intervals(&ranges);
        // cells: [1,3)=1, [3,5)=2, [5,6)=1, [6,8)=2, [8,9)=1
        assert_eq!(cells.len(), 5);
        assert_eq!(cells[1].1, 2);
        assert_eq!(cells[3].1, 2);
        let cands = discretize(&ranges);
        // fault 1 & 2 both nominate mid of [3,5) = 4; fault 3 nominates
        // mid of [6,8) = 7
        assert_eq!(cands, vec![4.0, 7.0]);
    }

    #[test]
    fn every_fault_is_covered_by_a_candidate() {
        let ranges = vec![
            set(&[(0.0, 1.0)]),
            set(&[(10.0, 11.0)]),
            set(&[(0.5, 10.5)]),
            set(&[(2.0, 3.0), (7.0, 8.0)]),
        ];
        let cands = discretize(&ranges);
        for (i, r) in ranges.iter().enumerate() {
            assert!(
                cands.iter().any(|&t| r.contains(t)),
                "range {i} uncovered by {cands:?}"
            );
        }
    }

    #[test]
    fn empty_input() {
        assert!(discretize(&[]).is_empty());
        assert!(discretize(&[IntervalSet::new()]).is_empty());
        assert!(elementary_intervals(&[]).is_empty());
    }

    #[test]
    fn disjoint_ranges_get_individual_candidates() {
        let ranges = vec![set(&[(0.0, 1.0)]), set(&[(5.0, 6.0)])];
        let cands = discretize(&ranges);
        assert_eq!(cands, vec![0.5, 5.5]);
    }

    #[test]
    fn identical_ranges_share_one_candidate() {
        let ranges = vec![set(&[(2.0, 4.0)]); 5];
        assert_eq!(discretize(&ranges), vec![3.0]);
    }

    #[test]
    fn counts_are_midpoint_memberships() {
        let ranges = vec![set(&[(0.0, 10.0)]), set(&[(4.0, 6.0)])];
        let cells = elementary_intervals(&ranges);
        for (iv, count) in cells {
            let members = ranges.iter().filter(|r| r.contains(iv.midpoint())).count();
            assert_eq!(members, count, "cell {iv}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_ranges() -> impl Strategy<Value = Vec<IntervalSet>> {
            proptest::collection::vec(
                proptest::collection::vec((0.0..500.0f64, 1.0..60.0f64), 1..4),
                1..24,
            )
            .prop_map(|faults| {
                faults
                    .into_iter()
                    .map(|ivs| {
                        IntervalSet::from_intervals(
                            ivs.into_iter().map(|(s, l)| Interval::new(s, s + l)),
                        )
                    })
                    .collect()
            })
        }

        proptest! {
            /// The defining guarantee: every non-empty range contains at
            /// least one candidate.
            #[test]
            fn every_range_covered(ranges in arb_ranges()) {
                let cands = discretize(&ranges);
                for (i, r) in ranges.iter().enumerate() {
                    prop_assert!(
                        cands.iter().any(|&t| r.contains(t)),
                        "range {i} uncovered"
                    );
                }
            }

            /// Candidates are sorted, deduplicated and no more numerous
            /// than the fault count.
            #[test]
            fn candidates_are_canonical(ranges in arb_ranges()) {
                let cands = discretize(&ranges);
                prop_assert!(cands.len() <= ranges.len());
                for w in cands.windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
            }

            /// Elementary-cell counts equal midpoint membership.
            #[test]
            fn cell_counts_match_membership(ranges in arb_ranges()) {
                for (iv, count) in elementary_intervals(&ranges) {
                    let members = ranges.iter().filter(|r| r.contains(iv.midpoint())).count();
                    prop_assert_eq!(members, count);
                }
            }
        }
    }
}
