use std::sync::Mutex;

use fastmon_atpg::TestSet;
use fastmon_faults::{DetectionRange, FaultList, IntervalSet};
use fastmon_monitor::{
    at_speed_monitor_detectable, shifted_detection, ConfigSet, MonitorConfig, MonitorPlacement,
};
use fastmon_netlist::{Circuit, NodeId};
use fastmon_sim::{
    try_parallel_map_with, ConeScratch, FaultScreen, ScreenScratch, SimEngine, SpareBank,
};
use fastmon_timing::{ClockSpec, DelayAnnotation, Time};

use crate::checkpoint::{CampaignCheckpoint, CheckpointError};
use crate::error::FlowError;

/// Per-fault detectability verdict after fault simulation and monitor
/// analysis (steps ②–⑤ of the paper's flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultVerdict {
    /// Detectable by conventional FAST: some mission-flip-flop detection
    /// interval lies inside `[t_min, t_nom)`.
    pub detected_conv: bool,
    /// Detectable with programmable monitors: some (possibly shifted)
    /// interval lies inside the window, under any configuration.
    pub detected_prop: bool,
    /// Detectable at the *nominal* capture time thanks to a monitor delay
    /// element (or by plain at-speed capture) — removed from the FAST
    /// target set.
    pub at_speed_monitor: bool,
}

impl FaultVerdict {
    /// Whether the fault belongs to the target set `Φ_tar`: it needs FAST
    /// and monitors can (help) detect it.
    #[must_use]
    pub fn is_target(&self) -> bool {
        self.detected_prop && !self.at_speed_monitor
    }
}

/// The result of the timing-accurate fault-simulation campaign: raw and
/// derived detection ranges for every candidate fault.
#[derive(Debug, Clone)]
pub struct DetectionAnalysis {
    /// The simulated candidate faults.
    pub faults: FaultList,
    /// Per fault: sparse list of `(pattern index, raw per-output detection
    /// range)`, glitch-filtered, clipped to `(0, t_nom)`.
    pub per_pattern: Vec<Vec<(u32, DetectionRange)>>,
    /// Per fault: union of the raw ranges over all patterns.
    pub raw_union: Vec<DetectionRange>,
    /// Per fault: FF-only observable range inside the FAST window
    /// (conventional FAST).
    pub conv_range: Vec<IntervalSet>,
    /// Per fault: observable range inside the FAST window under the best
    /// monitor configuration per instant (union over all configurations).
    pub fast_range: Vec<IntervalSet>,
    /// Per fault verdicts.
    pub verdicts: Vec<FaultVerdict>,
    /// Indices (into `faults`) of the target set `Φ_tar`.
    pub targets: Vec<usize>,
    /// Number of patterns simulated.
    pub num_patterns: usize,
}

impl DetectionAnalysis {
    /// Runs the campaign: every pattern is simulated fault-free once, every
    /// candidate fault whose site actually toggles under that pattern is
    /// re-simulated on its fanout cone, and the per-output differences are
    /// recorded.
    ///
    /// `glitch_threshold` applies pessimistic pulse filtering to each
    /// per-pattern, per-output interval set.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn compute(
        circuit: &Circuit,
        annot: &DelayAnnotation,
        clock: &ClockSpec,
        configs: &ConfigSet,
        placement: &MonitorPlacement,
        faults: FaultList,
        patterns: &TestSet,
        glitch_threshold: Time,
        threads: usize,
    ) -> Self {
        Self::compute_scoped(
            circuit,
            annot,
            clock,
            configs,
            placement,
            faults,
            patterns,
            glitch_threshold,
            threads,
            None,
        )
    }

    /// Like [`DetectionAnalysis::compute`], but records campaign counters
    /// into a scoped [`fastmon_obs::MetricsRegistry`] instead of the
    /// process-wide fallback.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn compute_scoped(
        circuit: &Circuit,
        annot: &DelayAnnotation,
        clock: &ClockSpec,
        configs: &ConfigSet,
        placement: &MonitorPlacement,
        faults: FaultList,
        patterns: &TestSet,
        glitch_threshold: Time,
        threads: usize,
        metrics: Option<&fastmon_obs::MetricsRegistry>,
    ) -> Self {
        let progress = CampaignCheckpoint {
            fingerprint: 0,
            next_pattern: 0,
            per_pattern: vec![Vec::new(); faults.len()],
            raw_union: vec![DetectionRange::new(); faults.len()],
        };
        match Self::compute_with_progress(
            circuit,
            annot,
            clock,
            configs,
            placement,
            faults,
            patterns,
            glitch_threshold,
            threads,
            metrics,
            None,
            progress,
            &mut |_| Ok(()),
        ) {
            Ok(analysis) => analysis,
            // Unreachable without an armed failpoint schedule: the no-op
            // checkpoint callback cannot fail, no cancel token is passed
            // and healthy workers do not panic. Under injection, callers
            // needing a typed error use the fallible flow entry points.
            Err(e) => panic!("infallible campaign entry failed: {e}"),
        }
    }

    /// The resumable campaign driver behind [`DetectionAnalysis::compute`]
    /// and [`HdfTestFlow::analyze_resumable`](crate::HdfTestFlow):
    /// simulation starts at `progress.next_pattern` on top of the already
    /// accumulated raw ranges, and `on_band` runs after every completed
    /// pattern band (this is where the flow persists a checkpoint). An
    /// `Err` from `on_band` aborts the campaign.
    ///
    /// Because per-pattern results are merged in a fixed ascending pattern
    /// order, resuming from any band boundary is bit-identical to an
    /// uninterrupted run, for any thread count on either side.
    ///
    /// Robustness hooks: the `campaign_band` failpoint fires once per band
    /// (surfacing [`FlowError::Injected`]), the `sim_worker` failpoint
    /// fires inside worker bodies (surfacing as a contained
    /// [`FlowError::WorkerPanic`]), worker panics are isolated via
    /// [`try_parallel_map_with`], and `cancel` is checked after every band
    /// checkpoint so a cancelled campaign always stops at a band boundary
    /// with its progress already persisted.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn compute_with_progress(
        circuit: &Circuit,
        annot: &DelayAnnotation,
        clock: &ClockSpec,
        configs: &ConfigSet,
        placement: &MonitorPlacement,
        faults: FaultList,
        patterns: &TestSet,
        glitch_threshold: Time,
        threads: usize,
        metrics: Option<&fastmon_obs::MetricsRegistry>,
        cancel: Option<&fastmon_obs::CancelToken>,
        mut progress: CampaignCheckpoint,
        on_band: &mut dyn FnMut(&CampaignCheckpoint) -> Result<(), CheckpointError>,
    ) -> Result<Self, FlowError> {
        debug_assert_eq!(progress.per_pattern.len(), faults.len());
        debug_assert_eq!(progress.raw_union.len(), faults.len());
        let _analyze_span = fastmon_obs::span!("analyze");
        let sim_metrics = metrics.map(|m| &m.sim);
        let engine = match sim_metrics {
            Some(m) => SimEngine::new(circuit, annot).with_metrics(m),
            None => SimEngine::new(circuit, annot),
        };

        // structural fault collapsing: only class representatives are
        // simulated; members receive the representative's results verbatim
        // at merge time (provably bit-identical, see
        // [`fastmon_faults::FaultClasses`])
        let classes = fastmon_faults::FaultClasses::build(circuit, &faults);
        if let Some(m) = sim_metrics {
            m.fault_classes.add(classes.num_classes() as u64);
            m.faults_collapsed.add(classes.collapsed_away() as u64);
        }
        // group representative faults by seed gate so each gate's fanout
        // cone is planned once and shared across all its pin/polarity
        // faults and patterns
        let mut by_gate: Vec<(NodeId, Vec<usize>)> = Vec::new();
        for (fid, fault) in faults.iter() {
            if !classes.is_representative(fid.index()) {
                continue;
            }
            let gate = fault.site.node();
            match by_gate.last_mut() {
                Some((g, list)) if *g == gate => list.push(fid.index()),
                _ => by_gate.push((gate, vec![fid.index()])),
            }
        }
        let threads = threads.max(1);
        // Oversubscription guard: requesting more workers than the machine
        // has cores only adds scheduling overhead (the old 4-thread runs
        // were *slower* than 1-thread on small hosts). Results are
        // bit-identical for any worker count by construction.
        let workers = threads.min(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(threads),
        );
        let plans: Vec<fastmon_sim::ConePlan> = fastmon_sim::parallel_map_with(
            by_gate.len(),
            workers,
            fastmon_sim::PlanScratch::new,
            |scratch, g| {
                fastmon_sim::ConePlan::new_with_scratch(circuit, by_gate[g].0, sim_metrics, scratch)
            },
        );
        // word-parallel screen: 64 faults share one union-cone traversal
        // per pattern; only survivors pay for an exact timing walk
        let screen = FaultScreen::build(circuit, &faults, &by_gate, &plans);
        let groups = screen.groups();

        // Two-axis fan-out: work items are (pattern, group-chunk) pairs, so
        // even a handful of patterns keeps every thread busy and the
        // work-stealing pool rebalances wildly uneven cone sizes. Patterns
        // are processed in bands so the shared fault-free results stay
        // memory-bounded: within a band, each pattern is simulated
        // fault-free exactly once and read by all its group chunks.
        let num_patterns = patterns.len();
        // The chunk partition exists to load-balance screen groups across
        // *real* workers; on a host where the campaign runs serially it is
        // pure per-item overhead, so it is sized from the effective worker
        // count, not the requested thread count. The fixed-order merge
        // below keeps results bit-identical for any chunk count.
        let num_chunks = if workers > 1 {
            groups.len().clamp(1, workers * 2)
        } else {
            1
        };
        // Bands want to be as coarse as memory allows: every band pays two
        // scoped-thread spawn rounds plus a checkpoint write, which at the
        // old `threads * 2` sizing dominated the campaign on machines where
        // workers mostly run serially. An eighth of the test set keeps the
        // band count (and hence spawn/checkpoint overhead) constant across
        // thread counts, the memory cap bounds the band's resident
        // fault-free waveforms on full-scale circuits, and the
        // `threads * 2` floor keeps every worker busy on small sets.
        // Written as max-then-min (not `clamp`) because the lower bound can
        // exceed the upper bound on small pattern sets, which `clamp`
        // rejects with a panic.
        let mem_cap = (4_000_000 / circuit.len().max(1)).max(threads * 2).max(4);
        let band_size = (num_patterns / 8)
            .max(threads * 2)
            .max(4)
            .min(mem_cap)
            .min(num_patterns.max(1));

        let contained = |panic: fastmon_sim::WorkerPanic| {
            if let Some(m) = metrics {
                m.robustness.worker_panics_contained.incr();
            }
            FlowError::WorkerPanic {
                phase: "analyze",
                message: panic.message(),
            }
        };

        // Campaign-lifetime worker state: scratch buffers live in a pool
        // that outlasts the per-band thread spawns, and recycled waveform
        // transition buffers move through a shared bank at work-item
        // granularity, so `waveform_allocs` tracks the concurrent peak
        // instead of growing with bands × workers.
        let worker_pool: Mutex<Vec<BandWorker>> = Mutex::new(Vec::new());
        let bank = SpareBank::new();

        let mut band_start = progress.next_pattern.min(num_patterns);
        while band_start < num_patterns {
            let _band_span = fastmon_obs::span!("band", band_start / band_size);
            fastmon_obs::failpoints::fire("campaign_band")?;
            let t_band = std::time::Instant::now();
            let band_len = band_size.min(num_patterns - band_start);
            // fault-free responses of the band, computed once, shared
            // read-only by every gate chunk
            let bases = try_parallel_map_with(
                band_len,
                workers,
                || (),
                |(), i| engine.simulate(&patterns.stimulus(circuit, band_start + i)),
            )
            .map_err(contained)?;

            let chunk_results = try_parallel_map_with(
                band_len * num_chunks,
                workers,
                || WorkerLease::take(&worker_pool, circuit),
                |lease, item| {
                    // Worker bodies have no error channel; both failpoint
                    // actions surface as a contained panic.
                    if let Err(injected) = fastmon_obs::failpoints::fire("sim_worker") {
                        panic!("{injected}");
                    }
                    let w = lease.get();
                    bank.withdraw(&mut w.scratch);
                    let base = &bases[item / num_chunks];
                    let chunk = item % num_chunks;
                    let lo = chunk * groups.len() / num_chunks;
                    let hi = (chunk + 1) * groups.len() / num_chunks;
                    let mut found: Vec<(u32, DetectionRange)> = Vec::new();
                    for group in &groups[lo..hi] {
                        // word-parallel screen: one union-cone traversal
                        // decides for all 64 faults whether an exact walk
                        // can possibly detect anything
                        let word = screen.screen(group, base, &mut w.screen_scratch, sim_metrics);
                        if word == 0 {
                            continue;
                        }
                        for (fidx, entry, bit) in group.members() {
                            if word & (1 << bit) == 0 {
                                continue;
                            }
                            let fault = faults.fault(fastmon_faults::FaultId::from_index(fidx));
                            engine.response_diff_planned_into(
                                base,
                                fault,
                                &plans[entry],
                                &mut w.scratch,
                                clock.t_nom,
                                &mut w.diffs,
                            );
                            if w.diffs.is_empty() {
                                continue;
                            }
                            let mut dr = DetectionRange::new();
                            for (op, set) in w.diffs.drain(..) {
                                let filtered = set
                                    .clipped(0.0, clock.t_nom)
                                    .filter_glitches(glitch_threshold);
                                dr.push(op, filtered);
                            }
                            if !dr.is_empty() {
                                let fidx = u32::try_from(fidx)
                                    .unwrap_or_else(|_| unreachable!("fault count fits u32"));
                                found.push((fidx, dr));
                            }
                        }
                    }
                    bank.deposit(&mut w.scratch);
                    found
                },
            )
            .map_err(contained)?;

            // merge in fixed (pattern, chunk) order — the result is
            // bit-identical for any thread count. Each representative's
            // detection range fans back to every member of its equivalence
            // class.
            for (item, found) in chunk_results.into_iter().enumerate() {
                let p = band_start + item / num_chunks;
                let p = u32::try_from(p).unwrap_or_else(|_| unreachable!("pattern count fits u32"));
                for (fidx, dr) in found {
                    let members = classes.members_of(fidx as usize);
                    for &m in members {
                        progress.raw_union[m as usize].merge(&dr);
                    }
                    let (last, rest) = match members.split_last() {
                        Some(split) => split,
                        None => unreachable!("a simulated fault represents its class"),
                    };
                    for &m in rest {
                        progress.per_pattern[m as usize].push((p, dr.clone()));
                    }
                    progress.per_pattern[*last as usize].push((p, dr));
                }
            }
            if let Some(m) = metrics {
                // Simulation time only — checkpoint save latency is its
                // own histogram, fed inside `on_band`.
                m.latency.band.record_duration(t_band.elapsed());
            }
            band_start += band_len;
            progress.next_pattern = band_start;
            on_band(&progress).map_err(FlowError::Checkpoint)?;
            // Cancellation is observed *after* the band checkpoint, so a
            // cancelled campaign always leaves a resumable file behind — but
            // only while bands remain. A token that fires after the final
            // band would otherwise turn a fully-simulated campaign into a
            // `Cancelled` whose resume replays zero bands.
            if band_start < num_patterns {
                if let Some(token) = cancel {
                    token.check("analyze")?;
                }
            }
        }

        // derived ranges and verdicts
        let CampaignCheckpoint {
            per_pattern,
            raw_union,
            ..
        } = progress;
        Ok(Self::finalize(
            faults,
            num_patterns,
            per_pattern,
            raw_union,
            placement,
            configs,
            clock,
        ))
    }

    /// Rebuilds a full analysis from a campaign's accumulated raw results
    /// (the `per_pattern`/`raw_union` fields of a completed
    /// [`CampaignCheckpoint`]): derives the conventional and monitored
    /// observable ranges, the per-fault verdicts and the target set.
    ///
    /// This is the (purely derived, simulation-free) tail of
    /// [`DetectionAnalysis::compute`], exposed so a shard supervisor can
    /// reconstruct a worker's analysis from its landed result file
    /// without re-simulating anything — the reconstruction is
    /// bit-identical because every derived field is a deterministic
    /// function of `raw_union` and the flow's static context.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn finalize(
        faults: FaultList,
        num_patterns: usize,
        per_pattern: Vec<Vec<(u32, DetectionRange)>>,
        raw_union: Vec<DetectionRange>,
        placement: &MonitorPlacement,
        configs: &ConfigSet,
        clock: &ClockSpec,
    ) -> Self {
        let mut conv_range = Vec::with_capacity(faults.len());
        let mut fast_range = Vec::with_capacity(faults.len());
        let mut verdicts = Vec::with_capacity(faults.len());
        let mut targets = Vec::new();
        for (i, raw) in raw_union.iter().enumerate() {
            let conv = shifted_detection(raw, placement, configs, MonitorConfig::Off, clock);
            let mut fast = conv.clone();
            for config in configs.configs() {
                if config != MonitorConfig::Off {
                    fast = fast.union(&shifted_detection(raw, placement, configs, config, clock));
                }
            }
            let verdict = FaultVerdict {
                detected_conv: !conv.is_empty(),
                detected_prop: !fast.is_empty(),
                at_speed_monitor: at_speed_monitor_detectable(raw, placement, configs, clock),
            };
            if verdict.is_target() {
                targets.push(i);
            }
            conv_range.push(conv);
            fast_range.push(fast);
            verdicts.push(verdict);
        }

        DetectionAnalysis {
            faults,
            per_pattern,
            raw_union,
            conv_range,
            fast_range,
            verdicts,
            targets,
            num_patterns,
        }
    }

    /// Merges per-shard analyses (each computed over a contiguous slice of
    /// the candidate fault list, in slice order) back into the analysis of
    /// the full list.
    ///
    /// Because every per-fault outcome is computed independently of the
    /// other faults in the campaign, concatenating the shards'
    /// per-fault fields and re-deriving the target indices is
    /// **bit-identical** to a single-process run over the whole list —
    /// [`DetectionAnalysis::result_fingerprint`] values match exactly, for
    /// any shard count, any thread count and any band partition.
    ///
    /// Merging an empty shard list yields the empty analysis.
    ///
    /// # Errors
    ///
    /// [`FlowError::ShardMerge`] when the shards disagree on the number of
    /// simulated patterns (they were run against different test sets).
    pub fn merge<I: IntoIterator<Item = DetectionAnalysis>>(shards: I) -> Result<Self, FlowError> {
        let mut merged = DetectionAnalysis {
            faults: FaultList::new(),
            per_pattern: Vec::new(),
            raw_union: Vec::new(),
            conv_range: Vec::new(),
            fast_range: Vec::new(),
            verdicts: Vec::new(),
            targets: Vec::new(),
            num_patterns: 0,
        };
        let mut fault_lists = Vec::new();
        for (i, shard) in shards.into_iter().enumerate() {
            if i == 0 {
                merged.num_patterns = shard.num_patterns;
            } else if shard.num_patterns != merged.num_patterns {
                return Err(FlowError::ShardMerge {
                    shard: i,
                    got: shard.num_patterns,
                    expected: merged.num_patterns,
                });
            }
            let offset = merged.per_pattern.len();
            merged.per_pattern.extend(shard.per_pattern);
            merged.raw_union.extend(shard.raw_union);
            merged.conv_range.extend(shard.conv_range);
            merged.fast_range.extend(shard.fast_range);
            merged.verdicts.extend(shard.verdicts);
            merged
                .targets
                .extend(shard.targets.into_iter().map(|t| t + offset));
            fault_lists.push(shard.faults);
        }
        merged.faults = FaultList::concat(fault_lists);
        Ok(merged)
    }

    /// Whether `fault` is detected when capturing at time `t` with pattern
    /// `pattern` under monitor configuration `config`.
    // the argument list mirrors the (f, p, c) triple of the paper's
    // schedule plus the three context objects — grouping them would only
    // add a struct the call sites immediately unpack
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn detected_at(
        &self,
        fault: usize,
        pattern: usize,
        config: MonitorConfig,
        t: Time,
        placement: &MonitorPlacement,
        configs: &ConfigSet,
        clock: &ClockSpec,
    ) -> bool {
        // entries are pushed in ascending pattern order during compute
        let entries = &self.per_pattern[fault];
        entries
            .binary_search_by_key(&pattern, |(p, _)| *p as usize)
            .ok()
            .is_some_and(|i| {
                let (_, dr) = &entries[i];
                shifted_detection(dr, placement, configs, config, clock).contains(t)
            })
    }

    /// Number of candidate faults.
    #[must_use]
    pub fn num_faults(&self) -> usize {
        self.faults.len()
    }

    /// FNV-1a fingerprint over every outcome field — per-pattern raw
    /// ranges, unions, derived conventional/FAST ranges, verdicts and the
    /// target set. Two analyses are bit-identical iff their fingerprints
    /// match, which is how the daemon soak suite compares a
    /// crash-resumed campaign against a clean serial run without
    /// shipping the full result across a socket.
    #[must_use]
    pub fn result_fingerprint(&self) -> u64 {
        let mut bytes = Vec::new();
        let push_u64 = |bytes: &mut Vec<u8>, v: u64| bytes.extend_from_slice(&v.to_le_bytes());
        let push_f64 = |bytes: &mut Vec<u8>, v: f64| {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        };
        let push_set = |bytes: &mut Vec<u8>, set: &IntervalSet| {
            let ivs: Vec<_> = set.iter().collect();
            push_u64(bytes, ivs.len() as u64);
            for iv in ivs {
                push_f64(bytes, iv.start);
                push_f64(bytes, iv.end);
            }
        };
        let push_range = |bytes: &mut Vec<u8>, dr: &DetectionRange| {
            let outputs: Vec<_> = dr.iter().collect();
            push_u64(bytes, outputs.len() as u64);
            for (op, set) in outputs {
                push_u64(bytes, op as u64);
                push_set(bytes, set);
            }
        };
        push_u64(&mut bytes, self.faults.len() as u64);
        push_u64(&mut bytes, self.num_patterns as u64);
        for entries in &self.per_pattern {
            push_u64(&mut bytes, entries.len() as u64);
            for (pattern, dr) in entries {
                push_u64(&mut bytes, u64::from(*pattern));
                push_range(&mut bytes, dr);
            }
        }
        for dr in &self.raw_union {
            push_range(&mut bytes, dr);
        }
        for set in self.conv_range.iter().chain(self.fast_range.iter()) {
            push_set(&mut bytes, set);
        }
        for v in &self.verdicts {
            bytes.push(
                u8::from(v.detected_conv)
                    | u8::from(v.detected_prop) << 1
                    | u8::from(v.at_speed_monitor) << 2,
            );
        }
        push_u64(&mut bytes, self.targets.len() as u64);
        for &t in &self.targets {
            push_u64(&mut bytes, t as u64);
        }
        crate::checkpoint::fnv1a(&bytes)
    }

    /// Count of faults detected by conventional FAST.
    #[must_use]
    pub fn detected_conv(&self) -> usize {
        self.verdicts.iter().filter(|v| v.detected_conv).count()
    }

    /// Count of faults detected with programmable monitors.
    #[must_use]
    pub fn detected_prop(&self) -> usize {
        self.verdicts.iter().filter(|v| v.detected_prop).count()
    }
}

/// Per-worker campaign scratch: the cone re-simulation buffers, the
/// word-screen mask buffers and the per-fault diff accumulator.
struct BandWorker {
    scratch: ConeScratch,
    screen_scratch: ScreenScratch,
    diffs: Vec<(usize, IntervalSet)>,
}

impl BandWorker {
    fn new(circuit: &Circuit) -> Self {
        BandWorker {
            scratch: ConeScratch::new(circuit),
            screen_scratch: ScreenScratch::new(),
            diffs: Vec::new(),
        }
    }
}

/// Checks a [`BandWorker`] out of the campaign pool and returns it on
/// drop, so scratch buffers survive the per-band thread spawns instead of
/// being reallocated `bands × workers` times. A worker that panics forfeits
/// its state (the lease is leaked with the worker thread), which exactly
/// matches the previous per-spawn lifetime under panic containment.
struct WorkerLease<'p> {
    pool: &'p Mutex<Vec<BandWorker>>,
    worker: Option<BandWorker>,
}

impl<'p> WorkerLease<'p> {
    fn take(pool: &'p Mutex<Vec<BandWorker>>, circuit: &Circuit) -> Self {
        let worker = pool
            .lock()
            .ok()
            .and_then(|mut p| p.pop())
            .unwrap_or_else(|| BandWorker::new(circuit));
        WorkerLease {
            pool,
            worker: Some(worker),
        }
    }

    fn get(&mut self) -> &mut BandWorker {
        match self.worker.as_mut() {
            Some(w) => w,
            None => unreachable!("lease holds a worker until dropped"),
        }
    }
}

impl Drop for WorkerLease<'_> {
    fn drop(&mut self) {
        if let Some(w) = self.worker.take() {
            if let Ok(mut pool) = self.pool.lock() {
                pool.push(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowConfig, HdfTestFlow};

    fn s27_analysis() -> (Circuit, FlowConfig) {
        (fastmon_netlist::library::s27(), FlowConfig::default())
    }

    #[test]
    fn ranges_live_inside_the_simulation_horizon() {
        let (c, cfg) = s27_analysis();
        let flow = HdfTestFlow::prepare(&c, &cfg);
        let patterns = flow.generate_patterns(None);
        let analysis = flow.analyze(&patterns);
        for ranges in &analysis.per_pattern {
            for (p, dr) in ranges {
                assert!((*p as usize) < analysis.num_patterns);
                for (op, set) in dr.iter() {
                    assert!(op < c.observe_points().len());
                    for iv in set.iter() {
                        assert!(iv.start >= 0.0 && iv.end <= flow.clock().t_nom + 1e-9);
                        assert!(iv.len() >= cfg.glitch_threshold - 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn fast_range_is_union_of_per_pattern_detection() {
        // every time in fast_range must be detected by some
        // (pattern, config); every per-pattern detection must lie inside
        // fast_range
        let (c, cfg) = s27_analysis();
        let flow = HdfTestFlow::prepare(&c, &cfg);
        let patterns = flow.generate_patterns(None);
        let analysis = flow.analyze(&patterns);
        for f in 0..analysis.num_faults() {
            let fast = &analysis.fast_range[f];
            if fast.is_empty() {
                continue;
            }
            for iv in fast.iter() {
                let t = iv.midpoint();
                let hit = analysis.per_pattern[f].iter().any(|(p, _)| {
                    flow.configs().configs().any(|config| {
                        analysis.detected_at(
                            f,
                            *p as usize,
                            config,
                            t,
                            flow.placement(),
                            flow.configs(),
                            flow.clock(),
                        )
                    })
                });
                assert!(
                    hit,
                    "fault {f}: fast_range time {t} not backed by any pattern"
                );
            }
        }
    }

    #[test]
    fn analyze_handles_tiny_pattern_sets() {
        // Regression: band sizing used `(threads * 2).clamp(4, num_patterns)`,
        // which panics ("assert min <= max") whenever the test set holds
        // fewer than 4 patterns. Truncated and empty test sets are valid
        // inputs and must not crash, at any thread count.
        let c = fastmon_netlist::library::s27();
        for threads in [1, 8] {
            let cfg = FlowConfig {
                threads,
                ..FlowConfig::default()
            };
            let flow = HdfTestFlow::prepare(&c, &cfg);
            for budget in [0, 1, 2, 3] {
                let patterns = flow.generate_patterns(Some(budget));
                assert!(patterns.len() <= budget);
                let analysis = flow.analyze(&patterns);
                assert_eq!(analysis.num_patterns, patterns.len());
                if budget == 0 {
                    assert!(analysis.per_pattern.iter().all(Vec::is_empty));
                }
            }
        }
    }

    #[test]
    fn verdicts_partition_consistently() {
        let (c, cfg) = s27_analysis();
        let flow = HdfTestFlow::prepare(&c, &cfg);
        let patterns = flow.generate_patterns(None);
        let analysis = flow.analyze(&patterns);
        for (i, v) in analysis.verdicts.iter().enumerate() {
            // conv implies prop
            assert!(!v.detected_conv || v.detected_prop, "fault {i}");
            // targets are exactly the prop-detected, not-at-speed faults
            assert_eq!(
                analysis.targets.contains(&i),
                v.is_target(),
                "fault {i} target membership"
            );
            // conv_range ⊆ fast_range
            let conv = &analysis.conv_range[i];
            for iv in conv.iter() {
                assert!(analysis.fast_range[i].contains(iv.midpoint()));
            }
        }
    }
}
