use std::time::Duration;

/// Configuration of the HDF test flow, with the paper's evaluation setup as
/// the default.
///
/// # Example
///
/// ```
/// use fastmon_core::FlowConfig;
///
/// let config = FlowConfig::default();
/// assert_eq!(config.fmax_factor, 3.0);
/// assert_eq!(config.monitor_fraction, 0.25);
/// assert_eq!(config.delta_sigma, 6.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// `f_max / f_nom` bound of FAST (paper: 3).
    pub fmax_factor: f64,
    /// Clock margin over the critical path (`t_nom = (1 + margin) · cpl`,
    /// paper: 0.05).
    pub clock_margin: f64,
    /// Fraction of observation points that carry a monitor (paper: 0.25,
    /// placed at long path ends).
    pub monitor_fraction: f64,
    /// Monitor delay elements relative to `t_nom` (paper:
    /// `{0.05, 0.10, 0.15, 1/3}`).
    pub monitor_delays_rel: Vec<f64>,
    /// Fault size in process-variation sigmas (paper: δ = 6σ).
    pub delta_sigma: f64,
    /// Relative standard deviation of process variation (paper: σ = 20 % of
    /// the nominal gate delay).
    pub sigma_rel: f64,
    /// Pessimistic pulse-filtering threshold for detection ranges, in ps.
    pub glitch_threshold: f64,
    /// Master seed (delay variation, ATPG fill, fault sampling).
    pub seed: u64,
    /// Worker threads for the fault simulation (0 = use all available).
    pub threads: usize,
    /// Deadline per ILP solve; on expiry the incumbent is used
    /// (paper: 1 hour with a commercial solver).
    pub ilp_deadline: Duration,
    /// Optional cap on the number of simulated candidate faults; when the
    /// population is larger, a deterministic sample is drawn. Results then
    /// describe the sampled population (recorded in the reports).
    pub max_faults: Option<usize>,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            fmax_factor: 3.0,
            clock_margin: 0.05,
            monitor_fraction: 0.25,
            monitor_delays_rel: vec![0.05, 0.10, 0.15, 1.0 / 3.0],
            delta_sigma: 6.0,
            sigma_rel: 0.2,
            glitch_threshold: 4.0,
            seed: 1,
            threads: 0,
            ilp_deadline: Duration::from_secs(20),
            max_faults: None,
        }
    }
}

impl FlowConfig {
    /// The effective worker-thread count.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = FlowConfig::default();
        assert_eq!(c.monitor_delays_rel.len(), 4);
        assert!((c.monitor_delays_rel[3] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.sigma_rel, 0.2);
        assert_eq!(c.clock_margin, 0.05);
    }

    #[test]
    fn effective_threads_positive() {
        assert!(FlowConfig::default().effective_threads() >= 1);
        let c = FlowConfig {
            threads: 3,
            ..FlowConfig::default()
        };
        assert_eq!(c.effective_threads(), 3);
    }
}
