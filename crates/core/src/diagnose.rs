//! Fault diagnosis from FAST observations.
//!
//! The paper uses detection ranges *forwards*: pick frequencies and monitor
//! configurations that detect every fault. The same data inverts into a
//! diagnosis engine: given the pass/fail outcome of applied
//! `(pattern, configuration, capture period)` triples — e.g. from a field
//! return that started failing FAST screening — rank the candidate small
//! delay faults by how well their predicted responses match the
//! observations. This localizes the marginal or aged device that the
//! monitors flagged.
//!
//! # Example
//!
//! ```
//! use fastmon_core::{diagnose, FlowConfig, HdfTestFlow, Observation};
//! use fastmon_monitor::MonitorConfig;
//! use fastmon_netlist::library;
//!
//! let circuit = library::s27();
//! let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
//! let patterns = flow.generate_patterns(None);
//! let analysis = flow.analyze(&patterns);
//! // pretend the device fails pattern 0 at the fastest capture
//! let obs = vec![Observation {
//!     pattern: 0,
//!     config: MonitorConfig::Off,
//!     period: flow.clock().t_min * 1.01,
//!     failed: true,
//! }];
//! let ranking = diagnose(&flow, &analysis, &obs);
//! assert!(ranking.len() <= analysis.num_faults());
//! ```

use fastmon_monitor::MonitorConfig;
use fastmon_timing::Time;

use crate::{DetectionAnalysis, HdfTestFlow};

/// One applied FAST test and its observed outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Pattern index (into the analyzed test set).
    pub pattern: u32,
    /// The chip-wide monitor configuration during the application.
    pub config: MonitorConfig,
    /// The capture period used.
    pub period: Time,
    /// `true` if the device failed (a capture mismatch / monitor alert).
    pub failed: bool,
}

/// A ranked diagnosis candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiagnosisCandidate {
    /// Fault index into the analysis fault list.
    pub fault: usize,
    /// Failing observations the fault explains.
    pub explained_fails: usize,
    /// Failing observations the fault cannot explain.
    pub missed_fails: usize,
    /// Passing observations the fault would have failed (contradictions).
    pub contradicted_passes: usize,
    /// Ranking score (higher is better).
    pub score: f64,
}

/// Ranks the analysis' candidate faults against the observations.
///
/// Scoring is the usual pass/fail match count with contradictions weighted
/// double (a fault that *should* have failed an observed pass is strong
/// counter-evidence, since small delay faults behave deterministically
/// under fixed conditions). Only faults explaining at least one failing
/// observation are returned, best first; ties break towards the lower
/// fault index for determinism.
#[must_use]
pub fn diagnose(
    flow: &HdfTestFlow<'_>,
    analysis: &DetectionAnalysis,
    observations: &[Observation],
) -> Vec<DiagnosisCandidate> {
    let mut out = Vec::new();
    for fault in 0..analysis.num_faults() {
        let mut explained = 0usize;
        let mut missed = 0usize;
        let mut contradicted = 0usize;
        for obs in observations {
            let predicted_fail = analysis.detected_at(
                fault,
                obs.pattern as usize,
                obs.config,
                obs.period,
                flow.placement(),
                flow.configs(),
                flow.clock(),
            );
            match (obs.failed, predicted_fail) {
                (true, true) => explained += 1,
                (true, false) => missed += 1,
                (false, true) => contradicted += 1,
                (false, false) => {}
            }
        }
        if explained == 0 {
            continue;
        }
        out.push(DiagnosisCandidate {
            fault,
            explained_fails: explained,
            missed_fails: missed,
            contradicted_passes: contradicted,
            score: explained as f64 - missed as f64 - 2.0 * contradicted as f64,
        });
    }
    out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.fault.cmp(&b.fault)));
    out
}

/// Synthesizes the observations a given fault would produce over a
/// schedule-like list of applications — handy for tests and for building
/// diagnosis experiments.
#[must_use]
pub fn predicted_observations(
    flow: &HdfTestFlow<'_>,
    analysis: &DetectionAnalysis,
    fault: usize,
    applications: &[(u32, MonitorConfig, Time)],
) -> Vec<Observation> {
    applications
        .iter()
        .map(|&(pattern, config, period)| Observation {
            pattern,
            config,
            period,
            failed: analysis.detected_at(
                fault,
                pattern as usize,
                config,
                period,
                flow.placement(),
                flow.configs(),
                flow.clock(),
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowConfig, Solver};
    use fastmon_netlist::library;

    fn setup() -> (fastmon_netlist::Circuit, FlowConfig) {
        (library::s27(), FlowConfig::default())
    }

    /// Build the application list of an ILP schedule (every entry's
    /// applications at its period).
    fn schedule_applications(
        flow: &HdfTestFlow<'_>,
        analysis: &DetectionAnalysis,
    ) -> Vec<(u32, MonitorConfig, f64)> {
        let schedule = flow.schedule(analysis, Solver::Ilp);
        let mut apps = Vec::new();
        for entry in &schedule.entries {
            for &(p, c) in &entry.applications {
                apps.push((p, c, entry.period));
            }
        }
        apps
    }

    #[test]
    fn injected_fault_is_top_ranked() {
        let (c, cfg) = setup();
        let flow = HdfTestFlow::prepare(&c, &cfg);
        let patterns = flow.generate_patterns(None);
        let analysis = flow.analyze(&patterns);
        let apps = schedule_applications(&flow, &analysis);
        assert!(!apps.is_empty());

        let mut checked = 0;
        for &truth in analysis.targets.iter().take(8) {
            let obs = predicted_observations(&flow, &analysis, truth, &apps);
            if !obs.iter().any(|o| o.failed) {
                continue; // not exercised by this schedule
            }
            let ranking = diagnose(&flow, &analysis, &obs);
            let best = ranking.first().expect("some candidate");
            // the true fault must be among the perfect-score candidates
            let truth_entry = ranking
                .iter()
                .find(|cand| cand.fault == truth)
                .expect("truth is a candidate");
            assert_eq!(truth_entry.missed_fails, 0);
            assert_eq!(truth_entry.contradicted_passes, 0);
            assert!(
                (truth_entry.score - best.score).abs() < 1e-9,
                "truth {truth} ranked below best"
            );
            checked += 1;
        }
        assert!(checked >= 3, "only {checked} faults exercised");
    }

    #[test]
    fn no_failures_means_no_candidates() {
        let (c, cfg) = setup();
        let flow = HdfTestFlow::prepare(&c, &cfg);
        let patterns = flow.generate_patterns(None);
        let analysis = flow.analyze(&patterns);
        let obs = vec![Observation {
            pattern: 0,
            config: MonitorConfig::Off,
            period: flow.clock().t_nom * 0.9,
            failed: false,
        }];
        assert!(diagnose(&flow, &analysis, &obs).is_empty());
    }

    #[test]
    fn contradictions_demote_candidates() {
        let (c, cfg) = setup();
        let flow = HdfTestFlow::prepare(&c, &cfg);
        let patterns = flow.generate_patterns(None);
        let analysis = flow.analyze(&patterns);
        // a dense application list (the minimal schedule detects most
        // faults exactly once, which cannot exhibit contradictions): every
        // pattern × config at the two fastest selected periods
        let schedule = flow.schedule(&analysis, Solver::Ilp);
        let mut apps = Vec::new();
        for entry in schedule.entries.iter().take(2) {
            for p in 0..patterns.len() {
                for config in flow.configs().configs() {
                    apps.push((u32::try_from(p).unwrap(), config, entry.period));
                }
            }
        }

        // take a fault with at least two failing applications; flip one of
        // its fails to pass — candidates explaining everything now carry a
        // contradiction, and the scoring must reflect it
        for &truth in &analysis.targets {
            let mut obs = predicted_observations(&flow, &analysis, truth, &apps);
            let fails: Vec<usize> = obs
                .iter()
                .enumerate()
                .filter(|(_, o)| o.failed)
                .map(|(i, _)| i)
                .collect();
            if fails.len() < 2 {
                continue;
            }
            obs[fails[0]].failed = false;
            let ranking = diagnose(&flow, &analysis, &obs);
            let truth_entry = ranking.iter().find(|cand| cand.fault == truth).unwrap();
            assert_eq!(truth_entry.contradicted_passes, 1);
            assert!(truth_entry.score < fails.len() as f64);
            return;
        }
        panic!("no fault with two failing applications found");
    }
}
