//! Typed result rows for the paper's evaluation artifacts (Tables I–III,
//! Fig. 3).
//!
//! The structs carry the same columns as the paper's tables; the binaries
//! of `fastmon-bench` print them side by side with the published values.

use fastmon_monitor::{shifted_detection, MonitorConfig};
use fastmon_netlist::CircuitStats;

use crate::{DetectionAnalysis, HdfTestFlow, Solver, TestSchedule};

/// One row of Table I: circuit statistics and detected HDFs, conventional
/// vs proposed.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Circuit name.
    pub circuit: String,
    /// Combinational gate count.
    pub gates: usize,
    /// Flip-flop count.
    pub flip_flops: usize,
    /// Pattern count `|P|`.
    pub patterns: usize,
    /// Monitor count `|M|`.
    pub monitors: usize,
    /// Faults detected by conventional FAST.
    pub detected_conv: usize,
    /// Faults detected with programmable monitors.
    pub detected_prop: usize,
    /// Relative coverage gain in percent.
    pub gain_percent: f64,
    /// Target fault set size `|Φ_tar|`.
    pub targets: usize,
}

/// Builds a Table I row from a finished analysis.
#[must_use]
pub fn table1_row(
    flow: &HdfTestFlow<'_>,
    analysis: &DetectionAnalysis,
    patterns: usize,
) -> Table1Row {
    let stats = CircuitStats::of(flow.circuit());
    let conv = analysis.detected_conv();
    let prop = analysis.detected_prop();
    Table1Row {
        circuit: flow.circuit().name().to_owned(),
        gates: stats.gates,
        flip_flops: stats.flip_flops,
        patterns,
        monitors: flow.placement().count(),
        detected_conv: conv,
        detected_prop: prop,
        gain_percent: if conv == 0 {
            if prop == 0 {
                0.0
            } else {
                100.0
            }
        } else {
            (prop as f64 / conv as f64 - 1.0) * 100.0
        },
        targets: analysis.targets.len(),
    }
}

/// One row of Table II: selected frequencies and schedule size.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Circuit name.
    pub circuit: String,
    /// Frequencies selected by the conventional baseline.
    pub freq_conv: usize,
    /// Frequencies selected by the greedy heuristic (with monitors).
    pub freq_heur: usize,
    /// Frequencies selected by the proposed ILP (with monitors).
    pub freq_prop: usize,
    /// `Δ%|F| = (1 − prop/conv) · 100`.
    pub freq_reduction_percent: f64,
    /// Naive test size `|F_prop| · |P| · |C|`.
    pub orig_pc: usize,
    /// Optimized schedule size `|S|`.
    pub opti_pc: usize,
    /// `Δ%|PC| = (1 − |S|/orig) · 100`.
    pub pc_reduction_percent: f64,
    /// Degradation notes from the proposed schedule (e.g. ILP deadline
    /// expiry with greedy fallback). Empty for clean solves.
    pub notes: Vec<String>,
}

/// Builds a Table II row (runs all three schedulers).
#[must_use]
pub fn table2_row(
    flow: &HdfTestFlow<'_>,
    analysis: &DetectionAnalysis,
    num_patterns: usize,
) -> Table2Row {
    let conv = flow.select_frequencies_only(analysis, Solver::Conventional, 0);
    let heur = flow.select_frequencies_only(analysis, Solver::Greedy, 0);
    let prop: TestSchedule = flow.schedule(analysis, Solver::Ilp);
    let freq_conv = conv.periods.len();
    let freq_heur = heur.periods.len();
    let freq_prop = prop.num_frequencies();
    let num_configs = flow.configs().len();
    let orig_pc = freq_prop * num_patterns * num_configs;
    let opti_pc = prop.num_applications();
    let notes = prop.notes.clone();
    Table2Row {
        circuit: flow.circuit().name().to_owned(),
        freq_conv,
        freq_heur,
        freq_prop,
        freq_reduction_percent: if freq_conv == 0 {
            0.0
        } else {
            (1.0 - freq_prop as f64 / freq_conv as f64) * 100.0
        },
        orig_pc,
        opti_pc,
        pc_reduction_percent: if orig_pc == 0 {
            0.0
        } else {
            (1.0 - opti_pc as f64 / orig_pc as f64) * 100.0
        },
        notes,
    }
}

/// One coverage-target entry of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageEntry {
    /// Coverage target (e.g. 0.99).
    pub cov: f64,
    /// Selected frequencies `|F_cov|`.
    pub frequencies: usize,
    /// Naive size `|PC_cov| = |F_cov| · |P| · |C|`.
    pub naive_pc: usize,
    /// Optimized schedule size `|S_cov|`.
    pub schedule: usize,
    /// `Δ% = (1 − |S|/|PC|) · 100`.
    pub reduction_percent: f64,
    /// Fraction of target faults actually covered.
    pub achieved: f64,
}

/// One row of Table III: schedules for several coverage targets.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Circuit name.
    pub circuit: String,
    /// One entry per coverage target, in the given order.
    pub entries: Vec<CoverageEntry>,
    /// Degradation notes collected over all coverage targets
    /// (deduplicated). Empty for clean solves.
    pub notes: Vec<String>,
}

/// Builds a Table III row for the given coverage targets (paper: 99 %,
/// 98 %, 95 %, 90 %).
#[must_use]
pub fn table3_row(
    flow: &HdfTestFlow<'_>,
    analysis: &DetectionAnalysis,
    num_patterns: usize,
    coverages: &[f64],
) -> Table3Row {
    let num_configs = flow.configs().len();
    let mut notes: Vec<String> = Vec::new();
    let entries = coverages
        .iter()
        .map(|&cov| {
            let schedule = flow.schedule_with_coverage(analysis, Solver::Ilp, cov);
            for note in &schedule.notes {
                if !notes.contains(note) {
                    notes.push(format!("cov {cov:.2}: {note}"));
                }
            }
            let covered: usize = schedule.entries.iter().map(|e| e.faults.len()).sum();
            let frequencies = schedule.num_frequencies();
            let naive_pc = frequencies * num_patterns * num_configs;
            let s = schedule.num_applications();
            CoverageEntry {
                cov,
                frequencies,
                naive_pc,
                schedule: s,
                reduction_percent: if naive_pc == 0 {
                    0.0
                } else {
                    (1.0 - s as f64 / naive_pc as f64) * 100.0
                },
                achieved: if analysis.targets.is_empty() {
                    1.0
                } else {
                    covered as f64 / analysis.targets.len() as f64
                },
            }
        })
        .collect();
    Table3Row {
        circuit: flow.circuit().name().to_owned(),
        entries,
        notes,
    }
}

/// One point of the Fig. 3 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Point {
    /// `f_max / f_nom` ratio.
    pub fmax_factor: f64,
    /// HDF coverage of conventional FAST (0..1).
    pub conv_coverage: f64,
    /// HDF coverage with monitors at 25 % of outputs, delay `t_nom/3`
    /// (0..1).
    pub prop_coverage: f64,
}

/// Computes the Fig. 3 series from a finished analysis without
/// re-simulating: the raw detection ranges are re-clipped for every
/// `f_max` setting.
#[must_use]
pub fn fig3_series(
    flow: &HdfTestFlow<'_>,
    analysis: &DetectionAnalysis,
    factors: &[f64],
) -> Vec<Fig3Point> {
    let placement = flow.placement();
    let configs = flow.configs();
    let largest = MonitorConfig::Delay(
        u8::try_from(configs.delays().len().saturating_sub(1))
            .unwrap_or_else(|_| unreachable!("few delays")),
    );

    // hidden faults: candidates not detectable at nominal capture
    let t_at_speed = flow.clock().t_nom * (1.0 - 1e-9);
    let hidden: Vec<usize> = (0..analysis.num_faults())
        .filter(|&i| {
            !analysis.raw_union[i]
                .iter()
                .any(|(_, set)| set.contains(t_at_speed))
        })
        .collect();
    if hidden.is_empty() {
        return factors
            .iter()
            .map(|&f| Fig3Point {
                fmax_factor: f,
                conv_coverage: 0.0,
                prop_coverage: 0.0,
            })
            .collect();
    }

    factors
        .iter()
        .map(|&factor| {
            let clock = flow.clock().with_fmax_factor(factor);
            let mut conv = 0usize;
            let mut prop = 0usize;
            for &i in &hidden {
                let raw = &analysis.raw_union[i];
                let ff = shifted_detection(raw, placement, configs, MonitorConfig::Off, &clock);
                if !ff.is_empty() {
                    conv += 1;
                    prop += 1;
                    continue;
                }
                if configs.delays().is_empty() {
                    continue;
                }
                let sr = shifted_detection(raw, placement, configs, largest, &clock);
                if !sr.is_empty() {
                    prop += 1;
                }
            }
            Fig3Point {
                fmax_factor: factor,
                conv_coverage: conv as f64 / hidden.len() as f64,
                prop_coverage: prop as f64 / hidden.len() as f64,
            }
        })
        .collect()
}

/// CSV serialization of report rows (one header + one line per row), for
/// downstream plotting.
pub mod csv {
    use super::{Fig3Point, Table1Row, Table2Row, Table3Row};
    use std::fmt::Write as _;

    /// Serializes Table I rows.
    #[must_use]
    pub fn table1(rows: &[Table1Row]) -> String {
        let mut out = String::from(
            "circuit,gates,flip_flops,patterns,monitors,conv,prop,gain_percent,targets\n",
        );
        for r in rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{:.2},{}",
                r.circuit,
                r.gates,
                r.flip_flops,
                r.patterns,
                r.monitors,
                r.detected_conv,
                r.detected_prop,
                r.gain_percent,
                r.targets
            );
        }
        out
    }

    /// Serializes Table II rows.
    #[must_use]
    pub fn table2(rows: &[Table2Row]) -> String {
        let mut out = String::from(
            "circuit,freq_conv,freq_heur,freq_prop,freq_reduction_percent,orig_pc,opti_pc,pc_reduction_percent\n",
        );
        for r in rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{:.2},{},{},{:.2}",
                r.circuit,
                r.freq_conv,
                r.freq_heur,
                r.freq_prop,
                r.freq_reduction_percent,
                r.orig_pc,
                r.opti_pc,
                r.pc_reduction_percent
            );
        }
        out
    }

    /// Serializes Table III rows (one line per circuit × coverage target).
    #[must_use]
    pub fn table3(rows: &[Table3Row]) -> String {
        let mut out = String::from(
            "circuit,coverage,frequencies,naive_pc,schedule,reduction_percent,achieved\n",
        );
        for r in rows {
            for e in &r.entries {
                let _ = writeln!(
                    out,
                    "{},{:.2},{},{},{},{:.2},{:.4}",
                    r.circuit,
                    e.cov,
                    e.frequencies,
                    e.naive_pc,
                    e.schedule,
                    e.reduction_percent,
                    e.achieved
                );
            }
        }
        out
    }

    /// Serializes a Fig. 3 series.
    #[must_use]
    pub fn fig3(points: &[Fig3Point]) -> String {
        let mut out = String::from("fmax_factor,conv_coverage,prop_coverage\n");
        for p in points {
            let _ = writeln!(
                out,
                "{:.2},{:.4},{:.4}",
                p.fmax_factor, p.conv_coverage, p.prop_coverage
            );
        }
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn csv_shapes() {
            let t1 = table1(&[Table1Row {
                circuit: "x".into(),
                gates: 1,
                flip_flops: 2,
                patterns: 3,
                monitors: 4,
                detected_conv: 5,
                detected_prop: 6,
                gain_percent: 20.0,
                targets: 7,
            }]);
            assert_eq!(t1.lines().count(), 2);
            assert!(t1.contains("x,1,2,3,4,5,6,20.00,7"));

            let f = fig3(&[Fig3Point {
                fmax_factor: 3.0,
                conv_coverage: 0.35,
                prop_coverage: 0.65,
            }]);
            assert!(f.contains("3.00,0.3500,0.6500"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowConfig;
    use fastmon_netlist::library;

    #[test]
    fn fig3_monotone_and_dominated() {
        let c = library::s27();
        let flow = HdfTestFlow::prepare(&c, &FlowConfig::default());
        let patterns = flow.generate_patterns(None);
        let analysis = flow.analyze(&patterns);
        let factors: Vec<f64> = (10..=30).map(|i| f64::from(i) / 10.0).collect();
        let series = fig3_series(&flow, &analysis, &factors);
        assert_eq!(series.len(), factors.len());
        let mut prev = Fig3Point {
            fmax_factor: 0.0,
            conv_coverage: 0.0,
            prop_coverage: 0.0,
        };
        for p in &series {
            // coverage grows with f_max and monitors never hurt
            assert!(p.conv_coverage >= prev.conv_coverage - 1e-12);
            assert!(p.prop_coverage >= prev.prop_coverage - 1e-12);
            assert!(p.prop_coverage >= p.conv_coverage - 1e-12);
            assert!((0.0..=1.0).contains(&p.conv_coverage));
            prev = *p;
        }
    }

    #[test]
    fn table_rows_consistent() {
        let c = library::s27();
        let flow = HdfTestFlow::prepare(&c, &FlowConfig::default());
        let patterns = flow.generate_patterns(None);
        let analysis = flow.analyze(&patterns);
        let t1 = table1_row(&flow, &analysis, patterns.len());
        assert_eq!(t1.circuit, "s27");
        assert!(t1.detected_prop >= t1.detected_conv);
        assert!(t1.targets <= t1.detected_prop);

        let t2 = table2_row(&flow, &analysis, patterns.len());
        assert!(t2.freq_prop <= t2.freq_heur);
        assert!(t2.opti_pc <= t2.orig_pc);

        let t3 = table3_row(&flow, &analysis, patterns.len(), &[0.99, 0.9]);
        assert_eq!(t3.entries.len(), 2);
        assert!(t3.entries[1].frequencies <= t3.entries[0].frequencies);
        for e in &t3.entries {
            assert!(e.schedule <= e.naive_pc);
            // within rounding, the achieved coverage respects the target
            assert!(
                e.achieved >= e.cov - 0.05,
                "achieved {} vs {}",
                e.achieved,
                e.cov
            );
        }
    }
}
