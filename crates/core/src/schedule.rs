use std::time::Duration;

use fastmon_ilp::{greedy, BranchBound, SetCover};
use fastmon_monitor::{ConfigSet, MonitorConfig, MonitorPlacement};
use fastmon_timing::{ClockSpec, Time};

use crate::{discretize, DetectionAnalysis, ScheduleError};

/// Which optimizer selects frequencies and pattern-configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solver {
    /// Conventional FAST baseline: no monitors (configuration `Off` only),
    /// greedy frequency selection over the FF-only detection ranges.
    Conventional,
    /// Greedy set covering with monitors — the *heur.* baseline of the
    /// paper's Table II.
    Greedy,
    /// Exact 0-1 ILP (branch-and-bound) with monitors — the proposed
    /// method.
    Ilp,
}

/// The outcome of test-frequency selection (step 1).
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencySelection {
    /// Selected capture periods (ascending).
    pub periods: Vec<Time>,
    /// Number of candidate periods offered to the optimizer.
    pub candidates: usize,
    /// Whether the solver proved optimality.
    pub optimal: bool,
    /// Whether the ILP deadline expired during the solve — the result is
    /// the anytime solver's best (greedy-quality) incumbent.
    pub deadline_hit: bool,
    /// Fault indices (into the analysis fault list) that the selected
    /// periods cover.
    pub covered: Vec<usize>,
}

/// One frequency of the final schedule with its pattern-configuration
/// applications.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleEntry {
    /// Capture period of this entry.
    pub period: Time,
    /// `(pattern index, monitor configuration)` applications.
    pub applications: Vec<(u32, MonitorConfig)>,
    /// Fault indices assigned to (and covered at) this frequency.
    pub faults: Vec<usize>,
}

/// A complete FAST schedule `S ⊆ F × P × C`.
#[derive(Debug, Clone, PartialEq)]
pub struct TestSchedule {
    /// Per-frequency entries, ascending by period.
    pub entries: Vec<ScheduleEntry>,
    /// The frequency-selection outcome that produced the entries.
    pub selection: FrequencySelection,
    /// Structured degradation notes: non-empty when any optimization step
    /// fell back to a non-optimal result (e.g. the ILP deadline expired and
    /// the greedy-quality incumbent was used). Empty for clean solves.
    pub notes: Vec<String>,
}

impl TestSchedule {
    /// Number of selected test frequencies `|F|`.
    #[must_use]
    pub fn num_frequencies(&self) -> usize {
        self.entries.len()
    }

    /// Total number of pattern-configuration applications `|S|`.
    #[must_use]
    pub fn num_applications(&self) -> usize {
        self.entries.iter().map(|e| e.applications.len()).sum()
    }

    /// A simple test-time model: every frequency switch costs
    /// `relock_cost` pattern-application equivalents (PLL re-locking
    /// dominates, Sec. IV-B), every application costs 1.
    #[must_use]
    pub fn test_time(&self, relock_cost: f64) -> f64 {
        self.num_frequencies() as f64 * relock_cost + self.num_applications() as f64
    }

    /// Verifies that every target fault of `analysis` is detected by at
    /// least one `(frequency, pattern, configuration)` triple of this
    /// schedule (sanity check used by tests and examples).
    #[must_use]
    pub fn covers_all_targets(&self, analysis: &DetectionAnalysis) -> bool {
        analysis
            .targets
            .iter()
            .all(|&f| self.entries.iter().any(|e| e.faults.contains(&f)))
    }
}

/// A cycle-accurate scan test-time model.
///
/// The paper motivates the two-step optimization with PLL re-locking
/// ("tens or hundreds of microseconds, corresponding to a loss of several
/// thousands of instruction cycles"): switching frequencies costs far more
/// than applying another pattern. This model makes the trade-off concrete
/// in clock cycles:
///
/// ```text
/// cycles = |F| · relock_cycles + Σ applications · (chain_length + 2)
/// ```
///
/// where every application shifts the scan chains (`chain_length` cycles;
/// shift-out overlaps the next shift-in) and spends two cycles on
/// launch/capture.
///
/// # Example
///
/// ```
/// use fastmon_core::TestTimeModel;
///
/// let model = TestTimeModel::new(200, 10_000.0);
/// // 3 frequencies, 50 applications
/// let cycles = model.cycles(3, 50);
/// assert_eq!(cycles, 3.0 * 10_000.0 + 50.0 * 202.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestTimeModel {
    /// Scan cycles to load one pattern (longest chain length).
    pub chain_length: usize,
    /// PLL re-lock penalty per frequency switch, in cycles.
    pub relock_cycles: f64,
}

impl TestTimeModel {
    /// Creates a model.
    #[must_use]
    pub fn new(chain_length: usize, relock_cycles: f64) -> Self {
        TestTimeModel {
            chain_length,
            relock_cycles,
        }
    }

    /// A model derived from the design: `flip_flops` scan cells balanced
    /// over `chains` chains, with a 10 000-cycle re-lock (the order of
    /// magnitude the paper cites).
    ///
    /// # Panics
    ///
    /// Panics if `chains` is zero.
    #[must_use]
    pub fn for_design(flip_flops: usize, chains: usize) -> Self {
        assert!(chains > 0, "need at least one scan chain");
        TestTimeModel::new(flip_flops.div_ceil(chains), 10_000.0)
    }

    /// Total cycles for a schedule shape.
    #[must_use]
    pub fn cycles(&self, frequencies: usize, applications: usize) -> f64 {
        frequencies as f64 * self.relock_cycles
            + applications as f64 * (self.chain_length as f64 + 2.0)
    }

    /// Total cycles of a [`TestSchedule`].
    #[must_use]
    pub fn schedule_cycles(&self, schedule: &TestSchedule) -> f64 {
        self.cycles(schedule.num_frequencies(), schedule.num_applications())
    }
}

/// Context shared by the scheduling steps.
pub(crate) struct ScheduleContext<'a> {
    pub analysis: &'a DetectionAnalysis,
    pub placement: &'a MonitorPlacement,
    pub configs: &'a ConfigSet,
    pub clock: &'a ClockSpec,
    pub deadline: Duration,
    pub metrics: Option<&'a fastmon_obs::IlpMetrics>,
    /// Cooperative cancellation for the anytime B&B: a tripped token
    /// degrades ILP solves to their greedy-quality incumbent
    /// (`deadline_hit = true`) instead of erroring — a cancelled schedule
    /// is still a valid schedule.
    pub cancel: Option<&'a fastmon_obs::CancelToken>,
}

/// Builds the stage solver for [`Solver::Ilp`], wiring the deadline and
/// any cancellation token from the context.
fn ilp_solver(ctx: &ScheduleContext<'_>) -> BranchBound {
    let solver = BranchBound::new().with_deadline(ctx.deadline);
    match ctx.cancel {
        Some(token) => solver.with_cancel(token.clone()),
        None => solver,
    }
}

/// Folds one set-cover solve into the scoped ILP telemetry. A deadline hit
/// means the anytime branch-and-bound fell back to its greedy-quality
/// incumbent, so it counts as both a deadline hit and a greedy fallback.
fn record_solve(metrics: Option<&fastmon_obs::IlpMetrics>, stats: &fastmon_ilp::SolveStats) {
    let Some(m) = metrics else { return };
    m.solves.incr();
    m.bb_nodes.add(stats.nodes);
    m.bb_fixed_by_reduction.add(stats.fixed_by_reduction as u64);
    m.bb_bounds_pruned.add(stats.bounds_pruned);
    if stats.deadline_hit {
        m.deadline_hits.incr();
        m.greedy_fallbacks.incr();
    }
}

/// Step 1: select a minimum set of capture periods covering the target
/// faults (up to `allowed_uncovered` waivers for coverage-target
/// schedules).
pub(crate) fn select_frequencies(
    ctx: &ScheduleContext<'_>,
    solver: Solver,
    allowed_uncovered: usize,
) -> Result<FrequencySelection, ScheduleError> {
    let _span = fastmon_obs::span!("ilp_stage_a");
    // relevant faults and their observable ranges
    let (fault_ids, ranges): (Vec<usize>, Vec<&fastmon_faults::IntervalSet>) = match solver {
        Solver::Conventional => ctx
            .analysis
            .verdicts
            .iter()
            .enumerate()
            .filter(|(_, v)| v.detected_conv)
            .map(|(i, _)| (i, &ctx.analysis.conv_range[i]))
            .unzip(),
        Solver::Greedy | Solver::Ilp => ctx
            .analysis
            .targets
            .iter()
            .map(|&i| (i, &ctx.analysis.fast_range[i]))
            .unzip(),
    };
    let owned: Vec<fastmon_faults::IntervalSet> = ranges.iter().map(|r| (*r).clone()).collect();
    let candidates = discretize(&owned);

    let sets: Vec<Vec<u32>> = candidates
        .iter()
        .map(|&t| {
            owned
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(t))
                .map(|(i, _)| {
                    u32::try_from(i).unwrap_or_else(|_| unreachable!("fault count fits u32"))
                })
                .collect()
        })
        .collect();
    let instance = SetCover::new(owned.len(), sets).with_allowed_uncovered(allowed_uncovered);
    let solution = match solver {
        Solver::Conventional | Solver::Greedy => greedy(&instance),
        Solver::Ilp => ilp_solver(ctx).solve(&instance),
    };
    record_solve(ctx.metrics, &solution.stats);
    if !solution.feasible {
        return Err(ScheduleError::InfeasibleCover {
            uncoverable: instance.uncoverable(),
            allowed_uncovered,
        });
    }

    let mut periods: Vec<Time> = solution.chosen.iter().map(|&i| candidates[i]).collect();
    periods.sort_by(Time::total_cmp);
    let covered: Vec<usize> = {
        let mut out = Vec::new();
        for (k, r) in owned.iter().enumerate() {
            if periods.iter().any(|&t| r.contains(t)) {
                out.push(fault_ids[k]);
            }
        }
        out
    };
    Ok(FrequencySelection {
        periods,
        candidates: candidates.len(),
        optimal: solution.optimal,
        deadline_hit: solution.stats.deadline_hit,
        covered,
    })
}

/// Step 2: for every selected period, choose a minimum set of
/// `(pattern, configuration)` applications covering the faults assigned to
/// it.
///
/// Fault-to-frequency assignment follows the paper: the selected periods
/// are processed in descending order of (remaining) coverage, each taking
/// all still-unassigned faults it can detect (heuristic selection with
/// fault dropping).
pub(crate) fn select_patterns(
    ctx: &ScheduleContext<'_>,
    solver: Solver,
    selection: FrequencySelection,
) -> TestSchedule {
    let _span = fastmon_obs::span!("ilp_stage_b");
    let configs: Vec<MonitorConfig> = match solver {
        Solver::Conventional => vec![MonitorConfig::Off],
        _ => ctx.configs.configs().collect(),
    };

    // ranges used for the assignment
    let range_of = |f: usize| -> &fastmon_faults::IntervalSet {
        match solver {
            Solver::Conventional => &ctx.analysis.conv_range[f],
            _ => &ctx.analysis.fast_range[f],
        }
    };

    // assign faults to periods by descending coverage with fault dropping
    let mut remaining: Vec<usize> = selection.covered.clone();
    let mut assignment: Vec<(Time, Vec<usize>)> = Vec::new();
    let mut periods_left: Vec<Time> = selection.periods.clone();
    while !remaining.is_empty() && !periods_left.is_empty() {
        let (best_idx, _) = periods_left
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let cover = remaining
                    .iter()
                    .filter(|&&f| range_of(f).contains(t))
                    .count();
                (i, cover)
            })
            .max_by_key(|&(i, c)| (c, std::cmp::Reverse(i)))
            .unwrap_or_else(|| unreachable!("the loop guard keeps periods_left non-empty"));
        let t = periods_left.remove(best_idx);
        let (taken, rest): (Vec<usize>, Vec<usize>) = remaining
            .iter()
            .copied()
            .partition(|&f| range_of(f).contains(t));
        remaining = rest;
        if !taken.is_empty() {
            assignment.push((t, taken));
        }
    }

    // per period: minimum pattern-config cover
    let mut notes = Vec::new();
    if selection.deadline_hit {
        notes.push(
            "ilp deadline hit during frequency selection: greedy-quality incumbent used              (non-optimal |F|)"
                .to_owned(),
        );
    }
    let mut entries = Vec::new();
    for (t, faults) in assignment {
        let (entry, deadline_hit, feasible) = optimize_entry(ctx, solver, t, &faults, &configs);
        if deadline_hit {
            notes.push(format!(
                "ilp deadline hit during pattern selection at period {t:.1} ps:                  greedy-quality incumbent used (non-minimal |S|)"
            ));
        }
        if !feasible {
            notes.push(format!(
                "pattern selection at period {t:.1} ps could not cover every assigned fault"
            ));
        }
        entries.push(entry);
    }
    entries.sort_by(|a, b| a.period.total_cmp(&b.period));

    TestSchedule {
        entries,
        selection,
        notes,
    }
}

/// Solves the pattern × configuration set cover of one frequency.
fn optimize_entry(
    ctx: &ScheduleContext<'_>,
    solver: Solver,
    period: Time,
    faults: &[usize],
    configs: &[MonitorConfig],
) -> (ScheduleEntry, bool, bool) {
    // enumerate candidate (pattern, config) combos covering ≥ 1 fault
    let mut combos: Vec<((u32, MonitorConfig), Vec<u32>)> = Vec::new();
    let mut combo_index: std::collections::HashMap<(u32, u8), usize> =
        std::collections::HashMap::new();
    for (k, &f) in faults.iter().enumerate() {
        for (p, dr) in &ctx.analysis.per_pattern[f] {
            for (ci, &config) in configs.iter().enumerate() {
                let detected = fastmon_monitor::shifted_detection(
                    dr,
                    ctx.placement,
                    ctx.configs,
                    config,
                    ctx.clock,
                )
                .contains(period);
                if detected {
                    let key = (
                        *p,
                        u8::try_from(ci).unwrap_or_else(|_| unreachable!("few configs")),
                    );
                    let idx = *combo_index.entry(key).or_insert_with(|| {
                        combos.push(((*p, config), Vec::new()));
                        combos.len() - 1
                    });
                    combos[idx].1.push(
                        u32::try_from(k).unwrap_or_else(|_| unreachable!("fault count fits u32")),
                    );
                }
            }
        }
    }

    let instance = SetCover::new(
        faults.len(),
        combos.iter().map(|(_, c)| c.clone()).collect(),
    );
    let solution = match solver {
        Solver::Conventional | Solver::Greedy => greedy(&instance),
        Solver::Ilp => ilp_solver(ctx).solve(&instance),
    };
    record_solve(ctx.metrics, &solution.stats);
    let mut applications: Vec<(u32, MonitorConfig)> =
        solution.chosen.iter().map(|&i| combos[i].0).collect();
    applications.sort_by_key(|&(p, c)| (p, config_rank(c)));

    (
        ScheduleEntry {
            period,
            applications,
            faults: faults.to_vec(),
        },
        solution.stats.deadline_hit,
        solution.feasible,
    )
}

fn config_rank(c: MonitorConfig) -> u8 {
    match c {
        MonitorConfig::Off => 0,
        MonitorConfig::Delay(i) => i + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_monitor::MonitorConfig;

    #[test]
    fn schedule_metrics() {
        let schedule = TestSchedule {
            entries: vec![
                ScheduleEntry {
                    period: 100.0,
                    applications: vec![(0, MonitorConfig::Off), (1, MonitorConfig::Delay(0))],
                    faults: vec![0, 1],
                },
                ScheduleEntry {
                    period: 200.0,
                    applications: vec![(2, MonitorConfig::Off)],
                    faults: vec![2],
                },
            ],
            selection: FrequencySelection {
                periods: vec![100.0, 200.0],
                candidates: 10,
                optimal: true,
                deadline_hit: false,
                covered: vec![0, 1, 2],
            },
            notes: Vec::new(),
        };
        assert_eq!(schedule.num_frequencies(), 2);
        assert_eq!(schedule.num_applications(), 3);
        assert!((schedule.test_time(1000.0) - 2003.0).abs() < 1e-12);
        let model = TestTimeModel::for_design(500, 4);
        assert_eq!(model.chain_length, 125);
        let cycles = model.schedule_cycles(&schedule);
        assert!((cycles - (2.0 * 10_000.0 + 3.0 * 127.0)).abs() < 1e-9);
    }

    #[test]
    fn relock_dominates_small_application_changes() {
        // the premise of the two-step optimization: one saved frequency
        // (10 000 cycles) outweighs ~98 extra pattern applications
        let model = TestTimeModel::new(100, 10_000.0);
        let fewer_freq = model.cycles(10, 650);
        let fewer_apps = model.cycles(11, 600);
        assert!(fewer_freq < fewer_apps);
        // but beyond the break-even point, applications win
        assert!(model.cycles(10, 750) > model.cycles(11, 600));
    }
}
