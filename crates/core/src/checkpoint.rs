//! Crash-safe checkpointing of the fault-simulation campaign.
//!
//! [`DetectionAnalysis`](crate::DetectionAnalysis)'s banded campaign can
//! persist its progress after every pattern band through a
//! [`CheckpointStore`]. The on-disk format is a small versioned binary
//! record (magic `FMCK`, format version, campaign fingerprint, raw
//! per-pattern detection ranges) protected by an FNV-1a checksum, and every
//! save is atomic: the record is written to a sibling `.tmp` file and
//! renamed over the destination, so a crash mid-write never leaves a
//! half-written checkpoint behind.
//!
//! Resuming is bit-exact: the campaign merges per-pattern results in a
//! fixed pattern order, so restarting from any band boundary yields the
//! same [`DetectionAnalysis`](crate::DetectionAnalysis) as an
//! uninterrupted run — for any thread count on either side of the
//! interruption.

use std::cell::Cell;
use std::fmt;
use std::path::{Path, PathBuf};

use fastmon_faults::{DetectionRange, Interval, IntervalSet};

/// Magic bytes leading every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"FMCK";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Errors of checkpoint persistence.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// No checkpoint file exists (a clean fresh start, not a failure).
    Missing,
    /// The underlying filesystem operation failed.
    Io {
        /// The operation that failed (`"read"`, `"write"`, `"rename"`, …).
        op: &'static str,
        /// The OS error message.
        message: String,
    },
    /// The file does not start with the `FMCK` magic.
    BadMagic,
    /// The file was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the file.
        got: u32,
        /// Version this build understands.
        supported: u32,
    },
    /// The trailing checksum does not match the payload — the file is
    /// corrupt.
    ChecksumMismatch,
    /// The file ends before the record does.
    Truncated,
    /// The checkpoint belongs to a different campaign (circuit, fault
    /// list, patterns or clock differ).
    FingerprintMismatch {
        /// Fingerprint found in the file.
        got: u64,
        /// Fingerprint of the running campaign.
        expected: u64,
    },
    /// A test-only interruption point fired (see
    /// [`CheckpointStore::with_interrupt_after`]); the checkpoint on disk
    /// is valid and resumable.
    Interrupted {
        /// Number of bands that were saved before the interruption.
        bands: usize,
    },
    /// Another live process (or thread) holds this campaign's checkpoint
    /// directory — two same-fingerprint campaigns must not interleave
    /// atomic renames onto one file.
    Locked {
        /// PID recorded in the lock file.
        holder_pid: u32,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Missing => write!(f, "no checkpoint file exists"),
            CheckpointError::Io { op, message } => {
                write!(f, "checkpoint {op} failed: {message}")
            }
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion { got, supported } => {
                write!(
                    f,
                    "checkpoint format version {got} is not supported (this build reads \
                     version {supported})"
                )
            }
            CheckpointError::ChecksumMismatch => {
                write!(f, "checkpoint checksum mismatch (corrupt file)")
            }
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::FingerprintMismatch { got, expected } => {
                write!(
                    f,
                    "checkpoint fingerprint {got:#018x} does not match this campaign \
                     ({expected:#018x})"
                )
            }
            CheckpointError::Interrupted { bands } => {
                write!(f, "campaign interrupted after {bands} checkpointed band(s)")
            }
            CheckpointError::Locked { holder_pid } => {
                write!(
                    f,
                    "checkpoint directory is locked by live process {holder_pid}"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The persisted mid-campaign state: everything the banded fault-simulation
/// loop has accumulated up to (but not including) pattern `next_pattern`.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    /// Fingerprint of the campaign inputs (circuit, faults, patterns,
    /// clock, glitch threshold).
    pub fingerprint: u64,
    /// First pattern index that has *not* been simulated yet.
    pub next_pattern: usize,
    /// Per fault: `(pattern, raw detection range)` entries accumulated so
    /// far, ascending by pattern.
    pub per_pattern: Vec<Vec<(u32, DetectionRange)>>,
    /// Per fault: union of the accumulated raw ranges.
    pub raw_union: Vec<DetectionRange>,
}

/// Persists campaign checkpoints to one file, atomically.
///
/// # Example
///
/// ```
/// use fastmon_core::{CampaignCheckpoint, CheckpointError, CheckpointStore};
///
/// let dir = std::env::temp_dir().join("fastmon-checkpoint-doc");
/// let store = CheckpointStore::new(dir.join("doc.ckpt"));
/// assert_eq!(store.load().unwrap_err(), CheckpointError::Missing);
/// let cp = CampaignCheckpoint {
///     fingerprint: 7,
///     next_pattern: 2,
///     per_pattern: vec![Vec::new()],
///     raw_union: vec![fastmon_faults::DetectionRange::new()],
/// };
/// store.save(&cp)?;
/// assert_eq!(store.load()?, cp);
/// store.clear()?;
/// # Ok::<(), CheckpointError>(())
/// ```
#[derive(Debug)]
pub struct CheckpointStore {
    path: PathBuf,
    interrupt_after: Option<usize>,
    saves: Cell<usize>,
}

/// Maps an [`fastmon_obs::InjectedFailure`] into the same
/// [`CheckpointError::Io`] shape a real syscall failure produces, so every
/// downstream recovery path (retry, degrade-to-restart) treats injections
/// exactly like genuine transient I/O.
fn injected_io(op: &'static str) -> impl Fn(fastmon_obs::InjectedFailure) -> CheckpointError {
    move |e| CheckpointError::Io {
        op,
        message: e.to_string(),
    }
}

impl CheckpointStore {
    /// Creates a store persisting to `path`.
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointStore {
            path: path.into(),
            interrupt_after: None,
            saves: Cell::new(0),
        }
    }

    /// Test hook simulating a crash: after `bands` successful saves, the
    /// next save completes on disk and then returns
    /// [`CheckpointError::Interrupted`], aborting the campaign with a
    /// valid, resumable checkpoint behind — exactly what a kill between
    /// two bands leaves.
    #[must_use]
    pub fn with_interrupt_after(mut self, bands: usize) -> Self {
        self.interrupt_after = Some(bands);
        self
    }

    /// The checkpoint file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Path of the run-id sidecar (`<path>.run`): the trace run id of the
    /// process that last wrote this checkpoint, enabling kill → resume
    /// trace chaining.
    fn run_sidecar_path(&self) -> PathBuf {
        let mut p = self.path.clone().into_os_string();
        p.push(".run");
        PathBuf::from(p)
    }

    /// The trace run id of the process that wrote the current checkpoint,
    /// if a sidecar survives. A resuming campaign records this as its
    /// predecessor so the two `events.jsonl` files are linkable.
    #[must_use]
    pub fn predecessor_run(&self) -> Option<u64> {
        let text = std::fs::read_to_string(self.run_sidecar_path()).ok()?;
        u64::from_str_radix(text.trim(), 16).ok()
    }

    /// Atomically persists `checkpoint` (write to `<path>.tmp`, then
    /// rename) and returns the number of bytes written (used by the
    /// campaign's checkpoint-latency telemetry).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] when the file cannot be written and
    /// [`CheckpointError::Interrupted`] when the
    /// [`with_interrupt_after`](Self::with_interrupt_after) test hook
    /// fires.
    pub fn save(&self, checkpoint: &CampaignCheckpoint) -> Result<u64, CheckpointError> {
        let bytes = encode(checkpoint);
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| CheckpointError::Io {
                    op: "create dir",
                    message: e.to_string(),
                })?;
            }
        }
        let mut tmp = self.path.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        // Failpoints fire *before* their syscall so an injected failure
        // never leaves a half-written file behind (the real write/rename
        // is skipped entirely); injected errors are indistinguishable from
        // transient I/O to the retry machinery upstream.
        fastmon_obs::failpoints::fire("checkpoint_write").map_err(injected_io("write"))?;
        std::fs::write(&tmp, &bytes).map_err(|e| CheckpointError::Io {
            op: "write",
            message: e.to_string(),
        })?;
        fastmon_obs::failpoints::fire("checkpoint_rename").map_err(injected_io("rename"))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| CheckpointError::Io {
            op: "rename",
            message: e.to_string(),
        })?;
        if self.saves.get() == 0 {
            // Best-effort: the sidecar lets a resuming process link its
            // trace back to this run's; losing it only costs the link,
            // never the checkpoint.
            let _ = std::fs::write(self.run_sidecar_path(), fastmon_obs::run_id());
        }
        let saves = self.saves.get() + 1;
        self.saves.set(saves);
        match self.interrupt_after {
            Some(n) if saves >= n => Err(CheckpointError::Interrupted { bands: saves }),
            _ => Ok(bytes.len() as u64),
        }
    }

    /// Loads and validates the checkpoint.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Missing`] when no file exists; the decoding
    /// errors ([`BadMagic`](CheckpointError::BadMagic),
    /// [`UnsupportedVersion`](CheckpointError::UnsupportedVersion),
    /// [`ChecksumMismatch`](CheckpointError::ChecksumMismatch),
    /// [`Truncated`](CheckpointError::Truncated)) when the file is not a
    /// valid current-version checkpoint.
    pub fn load(&self) -> Result<CampaignCheckpoint, CheckpointError> {
        fastmon_obs::failpoints::fire("checkpoint_load").map_err(injected_io("read"))?;
        let bytes = std::fs::read(&self.path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                CheckpointError::Missing
            } else {
                CheckpointError::Io {
                    op: "read",
                    message: e.to_string(),
                }
            }
        })?;
        decode(&bytes)
    }

    /// Removes the checkpoint file (no-op when absent).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] when the file exists but cannot be
    /// removed.
    pub fn clear(&self) -> Result<(), CheckpointError> {
        let _ = std::fs::remove_file(self.run_sidecar_path());
        match std::fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(CheckpointError::Io {
                op: "remove",
                message: e.to_string(),
            }),
        }
    }
}

const LOCK_FILE: &str = "LOCK";
const CHECKPOINT_FILE: &str = "campaign.ckpt";

/// Distinguishes concurrent lock attempts (threads of one process) in
/// their temp-file names.
static LOCK_ATTEMPT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn io_err(op: &'static str) -> impl Fn(std::io::Error) -> CheckpointError {
    move |e| CheckpointError::Io {
        op,
        message: e.to_string(),
    }
}

/// True when `pid` is a currently-live process. Uses `/proc` where it
/// exists (Linux); elsewhere the answer is conservatively "alive", so
/// locks are respected rather than stolen.
fn pid_alive(pid: u32) -> bool {
    if Path::new("/proc/self").exists() {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// Links the fully-written temp lock into place as `LOCK`. One steal
/// attempt: the first link failure reads the holder, and only a
/// provably-dead holder is evicted before the retry.
fn link_lock(tmp: &Path, lock_path: &Path) -> Result<(), CheckpointError> {
    for attempt in 0..2 {
        match std::fs::hard_link(tmp, lock_path) {
            Ok(()) => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder = std::fs::read_to_string(lock_path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                match holder {
                    Some(pid) if pid != std::process::id() && !pid_alive(pid) => {
                        // Stale lock from a killed daemon: steal it.
                        if attempt == 0 {
                            std::fs::remove_file(lock_path).map_err(io_err("lock steal"))?;
                            continue;
                        }
                        return Err(CheckpointError::Locked { holder_pid: pid });
                    }
                    Some(pid) => return Err(CheckpointError::Locked { holder_pid: pid }),
                    // Unreadable holder: locks are linked into place
                    // whole, so this is foreign junk — refuse rather
                    // than guess (GC sweeps it once it ages out).
                    None => return Err(CheckpointError::Locked { holder_pid: 0 }),
                }
            }
            Err(e) => return Err(io_err("lock create")(e)),
        }
    }
    Err(CheckpointError::Locked { holder_pid: 0 })
}

/// Claims `dir`'s `LOCK` for removal by GC. Returns `false` when a live
/// holder appears (a racing [`CheckpointDir::acquire`] won the directory
/// between the sweep's checks and this claim) or the filesystem refuses;
/// stale locks — a dead holder, or unreadable junk — are evicted first.
fn claim_for_removal(dir: &Path) -> bool {
    let lock_path = dir.join(LOCK_FILE);
    for attempt in 0..2 {
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock_path)
        {
            Ok(mut f) => {
                use std::io::Write as _;
                // Best effort: the claim is the file's existence; the
                // pid only lets a later sweep steal the claim if this
                // process dies before the removal below finishes.
                let _ = write!(f, "{}", std::process::id());
                return true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let stale = std::fs::read_to_string(&lock_path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok())
                    .is_none_or(|pid| pid != std::process::id() && !pid_alive(pid));
                if attempt == 0 && stale && std::fs::remove_file(&lock_path).is_ok() {
                    continue;
                }
                return false;
            }
            Err(_) => return false,
        }
    }
    false
}

/// A root of per-job checkpoint directories keyed by campaign
/// fingerprint: `<root>/<fingerprint:016x>/campaign.ckpt`, guarded by a
/// `LOCK` file naming the holder PID.
///
/// The lock exists because checkpoint saves are atomic *renames*: two
/// same-fingerprint campaigns pointed at one file would each rename
/// valid-but-different checkpoints over the other, and a resume could
/// then merge bands from interleaved histories. [`acquire`] makes the
/// second campaign fail fast with [`CheckpointError::Locked`] instead.
/// Locks left behind by a `kill -9` name a dead PID and are stolen on
/// the next acquire, so crash recovery never needs manual cleanup.
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    root: PathBuf,
}

/// What a [`CheckpointDir::gc`] sweep did, and why survivors survived.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Fingerprints whose directories were removed.
    pub removed: Vec<u64>,
    /// Directories kept because their fingerprint is live/queued.
    pub kept_live: usize,
    /// Directories kept because a live process holds their lock.
    pub kept_locked: usize,
    /// Directories kept because they are younger than the grace period
    /// (a crashed job's client may be about to resubmit).
    pub kept_young: usize,
}

impl CheckpointDir {
    /// A checkpoint root at `root` (created lazily on first acquire).
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        CheckpointDir { root: root.into() }
    }

    /// The root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The per-job directory for `fingerprint`.
    #[must_use]
    pub fn dir_for(&self, fingerprint: u64) -> PathBuf {
        self.root.join(format!("{fingerprint:016x}"))
    }

    /// Acquires the job directory for `fingerprint`, creating it (and the
    /// root) as needed. A `LOCK` file naming this PID is taken by
    /// hard-linking a fully-written temp file into place — linking fails
    /// if `LOCK` exists (the same atomic exclusivity as `create_new`),
    /// and any `LOCK` that exists carries its complete pid, so neither a
    /// crash nor a failed write can leave a garbled half-written lock
    /// wedging the fingerprint. A lock held by a dead process is stolen,
    /// a lock held by a live one — including another thread of this
    /// process — is [`CheckpointError::Locked`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Locked`] when the campaign is already running
    /// somewhere, [`CheckpointError::Io`] on filesystem failures.
    pub fn acquire(&self, fingerprint: u64) -> Result<JobStore, CheckpointError> {
        use std::sync::atomic::Ordering;
        let dir = self.dir_for(fingerprint);
        std::fs::create_dir_all(&dir).map_err(io_err("create dir"))?;
        let lock_path = dir.join(LOCK_FILE);
        let tmp = dir.join(format!(
            "{LOCK_FILE}.{}.{}.tmp",
            std::process::id(),
            LOCK_ATTEMPT.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::write(&tmp, std::process::id().to_string()).map_err(io_err("lock write"))?;
        let linked = link_lock(&tmp, &lock_path);
        let _ = std::fs::remove_file(&tmp);
        linked?;
        let store = CheckpointStore::new(dir.join(CHECKPOINT_FILE));
        Ok(JobStore {
            dir,
            lock_path,
            store,
        })
    }

    /// Removes checkpoint directories whose fingerprint matches no entry
    /// in `live`, whose lock (if any) names a dead process, and whose
    /// last modification is at least `min_age` old. The grace period is
    /// what makes startup-time GC safe after a `kill -9`: freshly-crashed
    /// campaigns stay resumable until their clients have had a chance to
    /// resubmit. The sweep claims each candidate's `LOCK` before removing
    /// it, so even with a zero grace period it cannot race a concurrent
    /// [`acquire`](CheckpointDir::acquire) of the same fingerprint.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the root exists but cannot be read;
    /// a missing root is an empty report, and per-directory removal
    /// failures are skipped (the next sweep retries them).
    pub fn gc(
        &self,
        live: &[u64],
        min_age: std::time::Duration,
    ) -> Result<GcReport, CheckpointError> {
        let mut report = GcReport::default();
        let entries = match std::fs::read_dir(&self.root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
            Err(e) => return Err(io_err("read dir")(e)),
        };
        let now = std::time::SystemTime::now();
        for entry in entries.flatten() {
            let name = entry.file_name();
            // Only the 16-hex-digit directories this store created are
            // candidates; anything else in the root is not ours to touch.
            let Some(fingerprint) = name
                .to_str()
                .filter(|s| s.len() == 16)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
            else {
                continue;
            };
            if live.contains(&fingerprint) {
                report.kept_live += 1;
                continue;
            }
            let dir = entry.path();
            let held = std::fs::read_to_string(dir.join(LOCK_FILE))
                .ok()
                .and_then(|s| s.trim().parse::<u32>().ok())
                .is_some_and(pid_alive);
            if held {
                report.kept_locked += 1;
                continue;
            }
            let age = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| now.duration_since(t).ok());
            // An unreadable mtime counts as young: keep, retry next sweep.
            if age.is_none_or(|a| a < min_age) {
                report.kept_young += 1;
                continue;
            }
            // With a zero grace a concurrent acquire could take this
            // directory between the checks above and the removal; claim
            // the LOCK first so the filesystem arbitrates the race
            // (exactly one of hard_link and create_new sees no lock).
            if !claim_for_removal(&dir) {
                report.kept_locked += 1;
                continue;
            }
            if std::fs::remove_dir_all(&dir).is_ok() {
                report.removed.push(fingerprint);
            } else {
                // Leave no wedge behind: drop the claim so the next
                // sweep (or a resuming campaign) can take the directory.
                let _ = std::fs::remove_file(dir.join(LOCK_FILE));
            }
        }
        report.removed.sort_unstable();
        Ok(report)
    }
}

/// An acquired per-job checkpoint directory: a [`CheckpointStore`] plus
/// the lock that makes it exclusive. The lock is released on drop;
/// [`complete`](JobStore::complete) removes the whole directory once the
/// campaign has finished and its results are landed.
#[derive(Debug)]
pub struct JobStore {
    dir: PathBuf,
    lock_path: PathBuf,
    store: CheckpointStore,
}

impl JobStore {
    /// The checkpoint store scoped to this job.
    #[must_use]
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// The job directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Removes the job directory (checkpoint, lock and all) after a
    /// successful campaign.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the directory cannot be removed.
    pub fn complete(self) -> Result<(), CheckpointError> {
        std::fs::remove_dir_all(&self.dir).map_err(io_err("remove dir"))
        // Drop still runs but the lock file is already gone; its cleanup
        // is a tolerated no-op.
    }
}

impl Drop for JobStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.lock_path);
    }
}

/// 64-bit FNV-1a over `bytes`, used both as the file checksum and (by the
/// flow) as the campaign fingerprint hasher.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn push_range(out: &mut Vec<u8>, dr: &DetectionRange) {
    let outputs: Vec<(usize, &IntervalSet)> = dr.iter().collect();
    push_u64(out, outputs.len() as u64);
    for (op, set) in outputs {
        push_u64(out, op as u64);
        let ivs: Vec<&Interval> = set.iter().collect();
        push_u64(out, ivs.len() as u64);
        for iv in ivs {
            push_f64(out, iv.start);
            push_f64(out, iv.end);
        }
    }
}

fn encode(cp: &CampaignCheckpoint) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    push_u32(&mut out, CHECKPOINT_VERSION);
    push_u64(&mut out, cp.fingerprint);
    push_u64(&mut out, cp.next_pattern as u64);
    push_u64(&mut out, cp.per_pattern.len() as u64);
    for entries in &cp.per_pattern {
        push_u64(&mut out, entries.len() as u64);
        for (pattern, dr) in entries {
            push_u32(&mut out, *pattern);
            push_range(&mut out, dr);
        }
    }
    for dr in &cp.raw_union {
        push_range(&mut out, dr);
    }
    let checksum = fnv1a(&out);
    push_u64(&mut out, checksum);
    out
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or(CheckpointError::Truncated)?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.u64()?).map_err(|_| CheckpointError::Truncated)
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn range(&mut self) -> Result<DetectionRange, CheckpointError> {
        let outputs = self.usize()?;
        let mut dr = DetectionRange::new();
        for _ in 0..outputs {
            let op = self.usize()?;
            let n = self.usize()?;
            let mut set = IntervalSet::new();
            for _ in 0..n {
                let start = self.f64()?;
                let end = self.f64()?;
                set.insert(Interval::new(start, end));
            }
            dr.push(op, set);
        }
        Ok(dr)
    }
}

fn decode(bytes: &[u8]) -> Result<CampaignCheckpoint, CheckpointError> {
    if bytes.len() < CHECKPOINT_MAGIC.len() {
        return Err(CheckpointError::Truncated);
    }
    if bytes[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let mut cursor = Cursor {
        data: bytes,
        pos: CHECKPOINT_MAGIC.len(),
    };
    let version = cursor.u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            got: version,
            supported: CHECKPOINT_VERSION,
        });
    }
    if bytes.len() < cursor.pos + 8 {
        return Err(CheckpointError::Truncated);
    }
    let payload_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(
        bytes[payload_end..]
            .try_into()
            .unwrap_or_else(|_| unreachable!("slice is exactly 8 bytes")),
    );
    if fnv1a(&bytes[..payload_end]) != stored {
        return Err(CheckpointError::ChecksumMismatch);
    }
    cursor.data = &bytes[..payload_end];

    let fingerprint = cursor.u64()?;
    let next_pattern = cursor.usize()?;
    let num_faults = cursor.usize()?;
    // a fault count beyond the payload size is a corrupt length field
    if num_faults > payload_end {
        return Err(CheckpointError::Truncated);
    }
    let mut per_pattern = Vec::with_capacity(num_faults);
    for _ in 0..num_faults {
        let n = cursor.u64()?;
        let mut entries = Vec::new();
        for _ in 0..n {
            let pattern = cursor.u32()?;
            let dr = cursor.range()?;
            entries.push((pattern, dr));
        }
        per_pattern.push(entries);
    }
    let mut raw_union = Vec::with_capacity(num_faults);
    for _ in 0..num_faults {
        raw_union.push(cursor.range()?);
    }
    if cursor.pos != payload_end {
        return Err(CheckpointError::Truncated);
    }
    Ok(CampaignCheckpoint {
        fingerprint,
        next_pattern,
        per_pattern,
        raw_union,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignCheckpoint {
        let mut dr = DetectionRange::new();
        let mut set = IntervalSet::new();
        set.insert(Interval::new(1.5, 2.5));
        set.insert(Interval::new(4.0, 4.5));
        dr.push(2, set);
        let mut dr2 = DetectionRange::new();
        let mut set2 = IntervalSet::new();
        set2.insert(Interval::new(0.25, 0.75));
        dr2.push(0, set2);
        CampaignCheckpoint {
            fingerprint: 0xdead_beef_1234_5678,
            next_pattern: 6,
            per_pattern: vec![vec![(1, dr.clone()), (5, dr2.clone())], Vec::new()],
            raw_union: vec![dr, dr2],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let cp = sample();
        let bytes = encode(&cp);
        assert_eq!(decode(&bytes).unwrap(), cp);
    }

    #[test]
    fn every_payload_bit_flip_is_detected() {
        let bytes = encode(&sample());
        // flip one bit in a handful of payload positions
        for pos in [8, 20, 40, bytes.len() - 20] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x10;
            let err = decode(&corrupt).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::ChecksumMismatch | CheckpointError::UnsupportedVersion { .. }
                ),
                "pos {pos}: {err:?}"
            );
        }
    }

    #[test]
    fn version_mismatch_is_reported_as_such() {
        let mut bytes = encode(&sample());
        bytes[4] = 99; // version field, little-endian low byte
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            CheckpointError::UnsupportedVersion { got: 99, .. }
        ));
    }

    #[test]
    fn truncation_and_magic_detected() {
        let bytes = encode(&sample());
        assert_eq!(decode(&bytes[..3]).unwrap_err(), CheckpointError::Truncated);
        assert_eq!(
            decode(&bytes[..bytes.len() - 5]).unwrap_err(),
            CheckpointError::ChecksumMismatch,
        );
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode(&bad).unwrap_err(), CheckpointError::BadMagic);
    }

    #[test]
    fn store_save_load_clear() {
        let dir = std::env::temp_dir().join(format!("fastmon-ckpt-{}", std::process::id()));
        let store = CheckpointStore::new(dir.join("t.ckpt"));
        assert_eq!(store.load().unwrap_err(), CheckpointError::Missing);
        let cp = sample();
        store.save(&cp).unwrap();
        assert_eq!(store.load().unwrap(), cp);
        store.clear().unwrap();
        assert_eq!(store.load().unwrap_err(), CheckpointError::Missing);
        store.clear().unwrap(); // idempotent
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn interrupt_hook_fires_after_n_saves() {
        let dir = std::env::temp_dir().join(format!("fastmon-ckpt-int-{}", std::process::id()));
        let store = CheckpointStore::new(dir.join("i.ckpt")).with_interrupt_after(2);
        let cp = sample();
        assert!(store.save(&cp).is_ok());
        assert_eq!(
            store.save(&cp).unwrap_err(),
            CheckpointError::Interrupted { bands: 2 }
        );
        // the interrupted save still reached the disk
        assert_eq!(store.load().unwrap(), cp);
        let _ = std::fs::remove_dir_all(dir);
    }

    fn fresh_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("fastmon-ckptdir-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn lock_excludes_same_fingerprint_and_releases_on_drop() {
        let root = fresh_root("lock");
        let dirs = CheckpointDir::new(&root);
        let job = dirs.acquire(0xabc).unwrap();
        // Second acquire of the same fingerprint: held by this (live)
        // process, so it must refuse, not steal.
        assert_eq!(
            dirs.acquire(0xabc).unwrap_err(),
            CheckpointError::Locked {
                holder_pid: std::process::id()
            }
        );
        // A different fingerprint is independent.
        let other = dirs.acquire(0xdef).unwrap();
        drop(other);
        // The store inside is scoped to the job directory.
        assert!(job.store().path().starts_with(dirs.dir_for(0xabc)));
        job.store().save(&sample()).unwrap();
        drop(job);
        // Lock released: reacquire succeeds and sees the checkpoint.
        let job2 = dirs.acquire(0xabc).unwrap();
        assert_eq!(job2.store().load().unwrap(), sample());
        job2.complete().unwrap();
        assert!(!dirs.dir_for(0xabc).exists());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn stale_lock_from_dead_pid_is_stolen() {
        let root = fresh_root("steal");
        let dirs = CheckpointDir::new(&root);
        let dir = dirs.dir_for(0x123);
        std::fs::create_dir_all(&dir).unwrap();
        // PIDs are capped well below this on Linux; nothing live owns it.
        std::fs::write(dir.join("LOCK"), "4294967294").unwrap();
        let job = dirs.acquire(0x123).unwrap();
        drop(job);
        // A garbled lock file is never stolen (writer may be mid-write).
        std::fs::write(dir.join("LOCK"), "not-a-pid").unwrap();
        assert_eq!(
            dirs.acquire(0x123).unwrap_err(),
            CheckpointError::Locked { holder_pid: 0 }
        );
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn gc_removes_only_stale_unlocked_aged_directories() {
        use std::time::Duration;
        let root = fresh_root("gc");
        let dirs = CheckpointDir::new(&root);
        // Missing root: empty report, not an error.
        assert_eq!(dirs.gc(&[], Duration::ZERO).unwrap(), GcReport::default());

        // live: fingerprint still queued; locked: held by this process;
        // stale: eligible; foreign: not a fingerprint directory.
        for fp in [0x1u64, 0x2, 0x3] {
            let job = dirs.acquire(fp).unwrap();
            job.store().save(&sample()).unwrap();
            if fp != 0x2 {
                drop(job); // release locks on all but 0x2
            } else {
                std::mem::forget(job); // keep 0x2's lock held on disk
            }
        }
        std::fs::create_dir_all(root.join("not-a-fingerprint")).unwrap();

        let report = dirs.gc(&[0x1], Duration::ZERO).unwrap();
        assert_eq!(report.removed, vec![0x3]);
        assert_eq!(report.kept_live, 1);
        assert_eq!(report.kept_locked, 1);
        assert!(dirs.dir_for(0x1).exists());
        assert!(dirs.dir_for(0x2).exists());
        assert!(!dirs.dir_for(0x3).exists());
        assert!(root.join("not-a-fingerprint").exists());

        // A long grace period keeps even stale directories (crash-recent
        // campaigns stay resumable until clients resubmit).
        let report = dirs.gc(&[], Duration::from_secs(3600)).unwrap();
        assert!(report.removed.is_empty());
        assert_eq!(report.kept_young, 1); // 0x1 (0x2 still lock-held)
        assert_eq!(report.kept_locked, 1);

        // Clean up the forgotten lock for 0x2 and sweep everything.
        std::fs::remove_file(dirs.dir_for(0x2).join("LOCK")).unwrap();
        let report = dirs.gc(&[], Duration::ZERO).unwrap();
        assert_eq!(report.removed, vec![0x1, 0x2]);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn lock_is_linked_whole_and_leaves_no_temp_files() {
        let root = fresh_root("whole");
        let dirs = CheckpointDir::new(&root);
        let job = dirs.acquire(0x77).unwrap();
        // The lock always carries its complete pid: it was written in
        // full before being linked into place.
        let lock = std::fs::read_to_string(dirs.dir_for(0x77).join("LOCK")).unwrap();
        assert_eq!(lock, std::process::id().to_string());
        // The temp file the link was taken from is gone again.
        let names: Vec<String> = std::fs::read_dir(dirs.dir_for(0x77))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["LOCK".to_string()]);
        drop(job);
        // A failed acquire (lock held) leaves no temp files either.
        let held = dirs.acquire(0x77).unwrap();
        dirs.acquire(0x77).unwrap_err();
        let count = std::fs::read_dir(dirs.dir_for(0x77)).unwrap().count();
        assert_eq!(count, 1); // just LOCK
        drop(held);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn gc_claims_locks_and_sweeps_dead_or_junk_holders() {
        use std::time::Duration;
        let root = fresh_root("gc-claim");
        let dirs = CheckpointDir::new(&root);
        // A crash leftover (dead pid) and foreign junk (unparseable
        // holder) both age out; the sweep steals the lock before
        // removing so it cannot race a resuming acquire.
        let dead = dirs.dir_for(0xa);
        std::fs::create_dir_all(&dead).unwrap();
        std::fs::write(dead.join("LOCK"), "4294967294").unwrap();
        let junk = dirs.dir_for(0xb);
        std::fs::create_dir_all(&junk).unwrap();
        std::fs::write(junk.join("LOCK"), "not-a-pid").unwrap();
        let report = dirs.gc(&[], Duration::ZERO).unwrap();
        assert_eq!(report.removed, vec![0xa, 0xb]);
        assert!(!dead.exists());
        assert!(!junk.exists());
        // A claim that loses to a live holder is kept, not removed —
        // the same arbitration a mid-sweep acquire would win.
        let job = dirs.acquire(0xc).unwrap();
        std::mem::forget(job); // keep the lock on disk past the JobStore
        let report = dirs.gc(&[], Duration::ZERO).unwrap();
        assert!(report.removed.is_empty());
        assert_eq!(report.kept_locked, 1);
        assert!(dirs.dir_for(0xc).exists());
        std::fs::remove_file(dirs.dir_for(0xc).join("LOCK")).unwrap();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn gc_skips_a_locked_dir_holding_live_shard_checkpoints() {
        use std::time::Duration;
        let root = fresh_root("gc-shards");
        let dirs = CheckpointDir::new(&root);
        // A supervised campaign parks its per-shard checkpoints inside
        // the job's locked directory, so a concurrent daemon gc can
        // never reap a shard file out from under a live supervisor.
        let job = dirs.acquire(0x5d).unwrap();
        let shard_ckpt = job.dir().join("shard-1-of-4.ckpt");
        CheckpointStore::new(&shard_ckpt).save(&sample()).unwrap();
        std::mem::forget(job); // the supervisor is still alive elsewhere
        let report = dirs.gc(&[], Duration::ZERO).unwrap();
        assert!(report.removed.is_empty());
        assert_eq!(report.kept_locked, 1);
        assert!(
            shard_ckpt.exists(),
            "gc reaped a live supervised shard's checkpoint"
        );
        // Lock released (supervisor done): the whole job dir, shard
        // files included, becomes collectable again.
        std::fs::remove_file(dirs.dir_for(0x5d).join("LOCK")).unwrap();
        let report = dirs.gc(&[], Duration::ZERO).unwrap();
        assert_eq!(report.removed, vec![0x5d]);
        assert!(!shard_ckpt.exists());
        let _ = std::fs::remove_dir_all(root);
    }

    // Decoding is exposed to whatever bytes happen to be on disk; it must
    // map *any* input to a typed error or a valid checkpoint, never panic.
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn decoding_arbitrary_bytes_never_panics(
            bytes in proptest::collection::vec(any::<u8>(), 0..512)
        ) {
            match decode(&bytes) {
                Ok(cp) => prop_assert!(cp.per_pattern.len() == cp.raw_union.len()),
                Err(e) => {
                    // every error renders (Display is part of the contract)
                    prop_assert!(!e.to_string().is_empty());
                }
            }
        }

        #[test]
        fn decoding_mutated_valid_checkpoints_never_panics(
            pos in 0usize..4096,
            mask in 0u8..255,
        ) {
            let mut bytes = encode(&sample());
            let len = bytes.len();
            // mask + 1 keeps the XOR non-trivial (1..=255)
            bytes[pos % len] ^= mask + 1;
            if let Err(e) = decode(&bytes) {
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}
