use std::fmt;

use fastmon_atpg::AtpgError;
use fastmon_netlist::NetlistError;
use fastmon_timing::TimingError;

use crate::checkpoint::CheckpointError;

/// Errors of the schedule-optimization step.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// A coverage target outside `(0, 1]` was requested.
    InvalidCoverage {
        /// The offending coverage value.
        cov: f64,
    },
    /// The covering instance is infeasible: some target faults appear in no
    /// candidate set and the waiver budget cannot absorb them.
    InfeasibleCover {
        /// Number of elements no set can cover.
        uncoverable: usize,
        /// The waiver budget that failed to absorb them.
        allowed_uncovered: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::InvalidCoverage { cov } => {
                write!(f, "coverage target {cov} lies outside (0, 1]")
            }
            ScheduleError::InfeasibleCover {
                uncoverable,
                allowed_uncovered,
            } => {
                write!(
                    f,
                    "covering instance is infeasible: {uncoverable} element(s) appear in no \
                     candidate set but only {allowed_uncovered} waiver(s) are allowed"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The workspace-wide error type of the HDF test flow: every fallible flow
/// step surfaces its failure as one of these variants instead of panicking.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// Netlist construction or parsing failed, or the circuit is degenerate
    /// (e.g. empty).
    Netlist(NetlistError),
    /// Delay annotation carries invalid values (NaN, negative, bad sigma).
    Timing(TimingError),
    /// Test-pattern construction failed.
    Atpg(AtpgError),
    /// Schedule optimization was given invalid or infeasible inputs.
    Schedule(ScheduleError),
    /// Campaign checkpointing failed in a way that cannot be degraded into
    /// a clean restart (e.g. the checkpoint file cannot be written).
    Checkpoint(CheckpointError),
    /// A deterministic failpoint (`FASTMON_FAILPOINTS`) injected a failure
    /// at a flow-level site; only possible when injection is armed.
    Injected {
        /// The failpoint site that fired.
        site: &'static str,
    },
    /// The run was cancelled cooperatively (explicit request or
    /// `FASTMON_DEADLINE_SECS` deadline) and stopped at a safe boundary.
    Cancelled {
        /// The flow phase that observed the cancellation.
        phase: &'static str,
    },
    /// A parallel worker panicked; the panic was contained by
    /// `catch_unwind` instead of aborting the process.
    WorkerPanic {
        /// The flow phase whose pool contained the panic.
        phase: &'static str,
        /// The rendered panic payload.
        message: String,
    },
    /// Shard analyses cannot be merged: a shard was run against a
    /// different pattern set than shard 0.
    ShardMerge {
        /// Index of the offending shard.
        shard: usize,
        /// Its pattern count.
        got: usize,
        /// The pattern count of shard 0.
        expected: usize,
    },
    /// A landed shard result file is missing, belongs to a different
    /// campaign/partition, or does not describe a completed shard run.
    ShardResult {
        /// Index of the shard whose result failed to load.
        shard: usize,
        /// Shard count of the partition.
        shards: usize,
        /// What was wrong with the file.
        reason: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Netlist(e) => write!(f, "netlist error: {e}"),
            FlowError::Timing(e) => write!(f, "timing error: {e}"),
            FlowError::Atpg(e) => write!(f, "atpg error: {e}"),
            FlowError::Schedule(e) => write!(f, "schedule error: {e}"),
            FlowError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            FlowError::Injected { site } => {
                write!(f, "injected failure at failpoint '{site}'")
            }
            FlowError::Cancelled { phase } => write!(f, "run cancelled during {phase}"),
            FlowError::WorkerPanic { phase, message } => {
                write!(f, "worker panicked during {phase} (contained): {message}")
            }
            FlowError::ShardMerge {
                shard,
                got,
                expected,
            } => {
                write!(
                    f,
                    "cannot merge shard {shard}: it simulated {got} pattern(s) but shard 0 \
                     simulated {expected}"
                )
            }
            FlowError::ShardResult {
                shard,
                shards,
                reason,
            } => {
                write!(
                    f,
                    "shard {shard} of {shards} has no usable result file: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Netlist(e) => Some(e),
            FlowError::Timing(e) => Some(e),
            FlowError::Atpg(e) => Some(e),
            FlowError::Schedule(e) => Some(e),
            FlowError::Checkpoint(e) => Some(e),
            FlowError::Injected { .. }
            | FlowError::Cancelled { .. }
            | FlowError::WorkerPanic { .. }
            | FlowError::ShardMerge { .. }
            | FlowError::ShardResult { .. } => None,
        }
    }
}

impl From<fastmon_obs::InjectedFailure> for FlowError {
    fn from(e: fastmon_obs::InjectedFailure) -> Self {
        FlowError::Injected { site: e.site }
    }
}

impl From<fastmon_obs::Cancelled> for FlowError {
    fn from(e: fastmon_obs::Cancelled) -> Self {
        FlowError::Cancelled { phase: e.phase }
    }
}

impl From<NetlistError> for FlowError {
    fn from(e: NetlistError) -> Self {
        FlowError::Netlist(e)
    }
}

impl From<TimingError> for FlowError {
    fn from(e: TimingError) -> Self {
        FlowError::Timing(e)
    }
}

impl From<AtpgError> for FlowError {
    fn from(e: AtpgError) -> Self {
        FlowError::Atpg(e)
    }
}

impl From<ScheduleError> for FlowError {
    fn from(e: ScheduleError) -> Self {
        FlowError::Schedule(e)
    }
}

impl From<CheckpointError> for FlowError {
    fn from(e: CheckpointError) -> Self {
        FlowError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_chains_the_source() {
        let e = FlowError::from(NetlistError::EmptyCircuit {
            circuit: "void".into(),
        });
        assert!(e.to_string().contains("void"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlowError>();
        assert_send_sync::<ScheduleError>();
    }

    #[test]
    fn schedule_error_display() {
        let e = ScheduleError::InfeasibleCover {
            uncoverable: 3,
            allowed_uncovered: 1,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('1'));
    }
}
