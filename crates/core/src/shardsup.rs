//! Multi-process shard supervision: heartbeats, retry/respawn with
//! capped backoff, an RSS watchdog, bounded concurrency and straggler
//! re-dispatch.
//!
//! The supervisor executes each shard of an `n`-way campaign as a
//! separate OS child process (typically a self-exec of the driver binary
//! in `--shard-worker i/n` mode) and keeps the campaign alive through
//! the failures a week-long run actually meets:
//!
//! * **Liveness** — every child streams newline-JSON heartbeat records
//!   (the [`fastmon_obs::events::shard`] schema) on its stdout pipe; a
//!   child that stays silent past the stall timeout is killed and
//!   respawned, and resumes from its own `shard-i-of-n.ckpt`.
//! * **Crash containment** — a child that exits nonzero, is `kill -9`'d
//!   or OOMs is respawned with capped exponential backoff (default 3
//!   retries) while the other shards keep running.
//! * **Memory enforcement** — an RSS watchdog polls each child's
//!   `/proc/<pid>/status` `VmRSS` against `FASTMON_SHARD_RSS_BYTES` and
//!   SIGTERMs the offender; the worker's cooperative cancellation stops
//!   at the next band boundary with its progress checkpointed
//!   (exit [`EXIT_EVICTED`]) and the shard is re-admitted later without
//!   charging its retry budget. Because cancellation is observed *after*
//!   the band checkpoint, every evict/readmit cycle makes at least one
//!   band of durable progress — the loop converges even under a limit
//!   the worker always exceeds.
//! * **Bounded concurrency** — at most `FASTMON_SHARD_JOBS` children run
//!   at once (default: available parallelism), and the last unfinished
//!   shard is re-dispatched once if it runs suspiciously long compared
//!   to the median completed shard.
//!
//! Completed shards land `shard-i-of-n.result` files (same atomic
//! tmp+rename, FNV-checksummed `FMCK` codec as checkpoints); landing is
//! idempotent, so the supervisor itself can be killed and restarted
//! mid-campaign and only the unfinished shards re-run. The deterministic
//! merge ([`crate::HdfTestFlow::merge_shard_results`]) is bit-identical
//! to the in-process serial reference.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader};
use std::process::Child;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use fastmon_obs::json::{self, Value};
use fastmon_obs::{CancelToken, MetricsRegistry};

/// Hard ceiling on shard and job counts: values above this are a config
/// error, not an invitation to fork-bomb the host.
pub const MAX_SHARDS: usize = 4096;

/// Exit code a worker uses for a *cooperative* stop (RSS eviction or
/// deadline): progress is checkpointed and the shard is resumable. BSD
/// `EX_TEMPFAIL`, matching `fastmon_bench::EXIT_CANCELLED`.
pub const EXIT_EVICTED: i32 = 75;

/// `SIGTERM` signal number (the graceful-stop signal of the watchdog).
pub const SIGTERM: i32 = 15;

/// Typed supervisor failures.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ShardsupError {
    /// An environment knob holds an unusable value. Carries the
    /// offending string so the operator sees exactly what was rejected.
    Config {
        /// The environment variable (or flag) name.
        key: String,
        /// The rejected raw value.
        value: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A worker process could not be spawned (or was spawned without a
    /// stdout pipe).
    Launch {
        /// The shard that failed to launch.
        shard: usize,
        /// The OS error message.
        message: String,
    },
    /// A shard exhausted its respawn budget without landing a result.
    ShardFailed {
        /// The failed shard.
        shard: usize,
        /// Launch attempts consumed (first run + respawns).
        attempts: u32,
        /// Description of the final exit.
        last: String,
    },
    /// The supervisor's cancellation token tripped; children were
    /// SIGTERMed and their checkpoints remain resumable.
    Cancelled {
        /// The phase that observed the cancellation.
        phase: &'static str,
    },
}

impl std::fmt::Display for ShardsupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardsupError::Config { key, value, reason } => {
                write!(f, "{key}={value:?}: {reason}")
            }
            ShardsupError::Launch { shard, message } => {
                write!(f, "cannot launch worker for shard {shard}: {message}")
            }
            ShardsupError::ShardFailed {
                shard,
                attempts,
                last,
            } => {
                write!(
                    f,
                    "shard {shard} failed after {attempts} attempt(s); last exit: {last}"
                )
            }
            ShardsupError::Cancelled { phase } => write!(f, "supervisor cancelled during {phase}"),
        }
    }
}

impl std::error::Error for ShardsupError {}

fn config_error(key: &str, value: &str, reason: impl Into<String>) -> ShardsupError {
    ShardsupError::Config {
        key: key.to_string(),
        value: value.to_string(),
        reason: reason.into(),
    }
}

/// Strict shard/job-count parsing: `0`, non-numeric and absurd (>
/// [`MAX_SHARDS`]) values are typed errors carrying the offending
/// string — never a silent clamp.
///
/// # Errors
///
/// [`ShardsupError::Config`] on any rejected value.
pub fn parse_shard_count(key: &str, raw: &str) -> Result<usize, ShardsupError> {
    let n: usize = raw
        .trim()
        .parse()
        .map_err(|_| config_error(key, raw, "expected an unsigned integer"))?;
    if n == 0 {
        return Err(config_error(key, raw, "must be at least 1"));
    }
    if n > MAX_SHARDS {
        return Err(config_error(
            key,
            raw,
            format!("exceeds the {MAX_SHARDS}-shard ceiling"),
        ));
    }
    Ok(n)
}

fn parse_u64(key: &str, raw: &str) -> Result<u64, ShardsupError> {
    raw.trim()
        .parse()
        .map_err(|_| config_error(key, raw, "expected an unsigned integer"))
}

/// A worker's `i/n` coordinates, as passed via `--shard-worker i/n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based shard index.
    pub shard: usize,
    /// Total shard count of the partition.
    pub shards: usize,
}

impl ShardSpec {
    /// Parses `"i/n"` with `i < n <=` [`MAX_SHARDS`].
    ///
    /// # Errors
    ///
    /// [`ShardsupError::Config`] on malformed or out-of-range specs.
    pub fn parse(raw: &str) -> Result<Self, ShardsupError> {
        const KEY: &str = "--shard-worker";
        let (i, n) = raw
            .split_once('/')
            .ok_or_else(|| config_error(KEY, raw, "expected SHARD/SHARDS"))?;
        let shards = parse_shard_count(KEY, n)?;
        let shard: usize = i
            .trim()
            .parse()
            .map_err(|_| config_error(KEY, raw, "expected an unsigned shard index"))?;
        if shard >= shards {
            return Err(config_error(
                KEY,
                raw,
                "shard index must be below the count",
            ));
        }
        Ok(ShardSpec { shard, shards })
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.shard, self.shards)
    }
}

/// Supervisor tuning. Every knob has an environment variable (see
/// [`SupervisorConfig::from_env`]); tests set fields directly.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Shard count of the partition.
    pub shards: usize,
    /// Maximum concurrently running workers (`FASTMON_SHARD_JOBS`).
    pub jobs: usize,
    /// Kill a worker that produced no parseable heartbeat for this long
    /// (`FASTMON_SHARD_STALL_SECS`).
    pub stall_timeout: Duration,
    /// Per-worker resident-set ceiling in bytes
    /// (`FASTMON_SHARD_RSS_BYTES`); `None` disables the watchdog.
    pub rss_limit_bytes: Option<u64>,
    /// Charged respawns allowed per shard before the campaign fails
    /// (`FASTMON_SHARD_RETRIES`).
    pub max_respawns: u32,
    /// Base respawn backoff (`FASTMON_SHARD_BACKOFF_MS`), doubled per
    /// charged attempt.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Re-dispatch the last unfinished shard once its runtime exceeds
    /// this multiple of the median completed-shard wall time
    /// (`FASTMON_SHARD_STRAGGLER_FACTOR`).
    pub straggler_factor: f64,
    /// Main-loop tick (event drain / reap / watchdog cadence).
    pub poll_interval: Duration,
    /// RSS probe cadence (coarser than the main tick — `/proc` reads are
    /// cheap but not free).
    pub rss_poll_interval: Duration,
}

impl SupervisorConfig {
    /// Defaults for an `n`-way partition: concurrency = available
    /// parallelism, 60 s stall timeout, no RSS limit, 3 respawns with
    /// 200 ms base backoff capped at 5 s, straggler factor 3.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        SupervisorConfig {
            shards,
            jobs: parallelism.clamp(1, MAX_SHARDS),
            stall_timeout: Duration::from_secs(60),
            rss_limit_bytes: None,
            max_respawns: 3,
            backoff: Duration::from_millis(200),
            backoff_cap: Duration::from_secs(5),
            straggler_factor: 3.0,
            poll_interval: Duration::from_millis(25),
            rss_poll_interval: Duration::from_millis(250),
        }
    }

    /// [`SupervisorConfig::new`] overridden by the `FASTMON_SHARD_*`
    /// environment knobs, with strict parsing.
    ///
    /// # Errors
    ///
    /// [`ShardsupError::Config`] carrying the offending variable and
    /// value.
    pub fn from_env(shards: usize) -> Result<Self, ShardsupError> {
        let mut config = SupervisorConfig::new(shards);
        if let Ok(v) = std::env::var("FASTMON_SHARD_JOBS") {
            config.jobs = parse_shard_count("FASTMON_SHARD_JOBS", &v)?;
        }
        if let Ok(v) = std::env::var("FASTMON_SHARD_RSS_BYTES") {
            let bytes = parse_u64("FASTMON_SHARD_RSS_BYTES", &v)?;
            if bytes == 0 {
                return Err(config_error(
                    "FASTMON_SHARD_RSS_BYTES",
                    &v,
                    "must be positive (unset the variable to disable the watchdog)",
                ));
            }
            config.rss_limit_bytes = Some(bytes);
        }
        if let Ok(v) = std::env::var("FASTMON_SHARD_STALL_SECS") {
            let secs = parse_u64("FASTMON_SHARD_STALL_SECS", &v)?;
            if secs == 0 {
                return Err(config_error(
                    "FASTMON_SHARD_STALL_SECS",
                    &v,
                    "must be at least 1",
                ));
            }
            config.stall_timeout = Duration::from_secs(secs);
        }
        if let Ok(v) = std::env::var("FASTMON_SHARD_RETRIES") {
            config.max_respawns = parse_u64("FASTMON_SHARD_RETRIES", &v)?
                .try_into()
                .map_err(|_| config_error("FASTMON_SHARD_RETRIES", &v, "exceeds the u32 range"))?;
        }
        if let Ok(v) = std::env::var("FASTMON_SHARD_BACKOFF_MS") {
            config.backoff = Duration::from_millis(parse_u64("FASTMON_SHARD_BACKOFF_MS", &v)?);
        }
        if let Ok(v) = std::env::var("FASTMON_SHARD_RSS_POLL_MS") {
            let ms = parse_u64("FASTMON_SHARD_RSS_POLL_MS", &v)?;
            if ms == 0 {
                return Err(config_error(
                    "FASTMON_SHARD_RSS_POLL_MS",
                    &v,
                    "must be at least 1",
                ));
            }
            config.rss_poll_interval = Duration::from_millis(ms);
        }
        if let Ok(v) = std::env::var("FASTMON_SHARD_STRAGGLER_FACTOR") {
            let factor: f64 = v.trim().parse().map_err(|_| {
                config_error("FASTMON_SHARD_STRAGGLER_FACTOR", &v, "expected a number")
            })?;
            if !factor.is_finite() || factor < 1.0 {
                return Err(config_error(
                    "FASTMON_SHARD_STRAGGLER_FACTOR",
                    &v,
                    "must be a finite number >= 1",
                ));
            }
            config.straggler_factor = factor;
        }
        Ok(config)
    }
}

/// What happened inside the supervisor, for flight recorders and
/// progress displays. `Heartbeat` carries the worker's raw line plus
/// its parsed form, so forwarding costs no re-serialization.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum SupervisorEvent {
    /// A worker process started (attempt 0 is the first launch).
    Spawned {
        /// Shard index.
        shard: usize,
        /// Charged attempt number at launch time.
        attempt: u32,
        /// OS process id.
        pid: u32,
    },
    /// A parseable JSON line arrived on a worker's pipe.
    Heartbeat {
        /// Shard index.
        shard: usize,
        /// The raw line as the worker wrote it.
        line: String,
        /// The parsed record.
        value: Value,
    },
    /// A worker went silent past the stall timeout and was killed.
    Stalled {
        /// Shard index.
        shard: usize,
        /// The killed pid.
        pid: u32,
        /// How long the pipe had been silent.
        silent_for: Duration,
    },
    /// A worker died (or exited) without landing its result.
    Crashed {
        /// Shard index.
        shard: usize,
        /// Charged attempts so far (including this one).
        attempt: u32,
        /// Rendered exit status.
        status: String,
    },
    /// A crashed shard is waiting out its respawn backoff.
    Backoff {
        /// Shard index.
        shard: usize,
        /// Charged attempts so far.
        attempt: u32,
        /// The delay before the next launch.
        delay: Duration,
    },
    /// The RSS watchdog SIGTERMed a worker over the memory ceiling.
    RssEvicted {
        /// Shard index.
        shard: usize,
        /// The signalled pid.
        pid: u32,
        /// Observed resident set, bytes.
        rss_bytes: u64,
        /// The configured ceiling, bytes.
        limit_bytes: u64,
    },
    /// An evicted shard was re-admitted (no retry budget charged).
    Readmitted {
        /// Shard index.
        shard: usize,
    },
    /// The last unfinished shard outlived the straggler threshold and
    /// was killed for re-dispatch (no retry budget charged).
    StragglerRedispatched {
        /// Shard index.
        shard: usize,
        /// The killed pid.
        pid: u32,
        /// Its wall time at the kill.
        elapsed: Duration,
    },
    /// A shard's result file landed and validated.
    Completed {
        /// Shard index.
        shard: usize,
    },
}

/// Counters of one supervised campaign (also mirrored into
/// `robustness.shardsup.*` when a [`MetricsRegistry`] is supplied).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupervisorReport {
    /// Worker processes spawned (first attempts and respawns).
    pub workers_spawned: u64,
    /// Charged respawns (crashes, nonzero exits, stall kills).
    pub respawns: u64,
    /// Stall-timeout kills.
    pub stalls_detected: u64,
    /// RSS-watchdog SIGTERMs.
    pub rss_evictions: u64,
    /// Evicted shards re-admitted.
    pub readmissions: u64,
    /// Straggler re-dispatches.
    pub stragglers_redispatched: u64,
    /// Heartbeat lines parsed.
    pub heartbeats_received: u64,
    /// Shards that landed a valid result.
    pub shards_completed: u64,
}

// -- child bookkeeping -------------------------------------------------

struct RunningShard {
    shard: usize,
    child: Child,
    pid: u32,
    started: Instant,
    last_event: Instant,
    last_rss_poll: Instant,
    /// SIGTERMed by the RSS watchdog; an `EXIT_EVICTED` exit is expected
    /// and uncharged.
    evicting: bool,
    /// SIGKILLed by the stall watchdog; the exit is charged.
    stall_killed: bool,
    /// SIGKILLed for straggler re-dispatch; the exit is uncharged.
    redispatch_killed: bool,
}

#[derive(Default)]
struct ShardState {
    /// Charged attempts consumed so far.
    attempt: u32,
    /// Earliest next launch (respawn backoff).
    not_before: Option<Instant>,
    /// Pending re-admission after an eviction (emit `Readmitted`).
    evicted: bool,
    /// The one-shot straggler re-dispatch has been used.
    redispatched: bool,
}

/// Sends `sig` to `pid`. Returns false when the signal could not be
/// delivered (dead pid, non-unix host).
pub fn send_signal(pid: u32, sig: i32) -> bool {
    #[cfg(unix)]
    {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        let Ok(pid) = i32::try_from(pid) else {
            return false;
        };
        // SAFETY: plain syscall wrapper; signalling a stale pid is
        // answered with ESRCH, not UB.
        unsafe { kill(pid, sig) == 0 }
    }
    #[cfg(not(unix))]
    {
        let _ = (pid, sig);
        false
    }
}

/// Current resident set of `pid` in bytes (`VmRSS` of
/// `/proc/<pid>/status`), `None` off Linux or for a dead pid.
#[must_use]
pub fn vm_rss_bytes(pid: u32) -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmRSS:") {
                let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kib * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        None
    }
}

fn render_status(status: &std::process::ExitStatus) -> String {
    // `ExitStatus`'s Display already names signals on unix
    // ("signal: 9 (SIGKILL)") and codes elsewhere.
    status.to_string()
}

/// Runs one supervised campaign.
///
/// * `launch(shard, attempt)` spawns the worker process for a shard with
///   **stdout piped** (the heartbeat channel); `attempt` is the charged
///   attempt number, so chaos harnesses can arm failpoints on the first
///   attempt only.
/// * `is_complete(shard)` checks whether the shard's result file has
///   landed and validates — consulted before every (re)launch and after
///   every exit, which is what makes supervisor restarts and redundant
///   re-dispatches free.
/// * `on_event` observes every [`SupervisorEvent`] (flight recorder,
///   progress rows, chaos assertions).
/// * `cancel`, when tripped, SIGTERMs all children, waits for them and
///   returns [`ShardsupError::Cancelled`] — every shard's checkpoint
///   stays resumable.
///
/// # Errors
///
/// [`ShardsupError::Launch`] when a worker cannot be spawned,
/// [`ShardsupError::ShardFailed`] when a shard exhausts its respawn
/// budget (remaining children are terminated; their checkpoints
/// persist), [`ShardsupError::Cancelled`] on cooperative cancellation.
pub fn run(
    config: &SupervisorConfig,
    launch: &mut dyn FnMut(usize, u32) -> io::Result<Child>,
    is_complete: &mut dyn FnMut(usize) -> bool,
    on_event: &mut dyn FnMut(SupervisorEvent),
    cancel: Option<&CancelToken>,
    metrics: Option<&MetricsRegistry>,
) -> Result<SupervisorReport, ShardsupError> {
    let mut report = SupervisorReport::default();
    let shardsup = metrics.map(|m| &m.shardsup);
    let (tx, rx) = mpsc::channel::<(usize, String)>();
    let mut pending: VecDeque<usize> = (0..config.shards).collect();
    let mut states: Vec<ShardState> = (0..config.shards).map(|_| ShardState::default()).collect();
    let mut running: Vec<RunningShard> = Vec::new();
    let mut completed = vec![false; config.shards];
    let mut completed_walls: Vec<Duration> = Vec::new();

    let complete_shard = |shard: usize,
                          completed: &mut Vec<bool>,
                          report: &mut SupervisorReport,
                          on_event: &mut dyn FnMut(SupervisorEvent)| {
        if !completed[shard] {
            completed[shard] = true;
            report.shards_completed += 1;
            if let Some(s) = shardsup {
                s.shards_completed.incr();
            }
            on_event(SupervisorEvent::Completed { shard });
        }
    };

    let terminate_all = |running: &mut Vec<RunningShard>| {
        for rs in running.iter() {
            send_signal(rs.pid, SIGTERM);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        for rs in running.iter_mut() {
            loop {
                match rs.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    _ => {
                        let _ = rs.child.kill();
                        let _ = rs.child.wait();
                        break;
                    }
                }
            }
        }
        running.clear();
    };

    loop {
        // -- cooperative cancellation ---------------------------------
        if let Some(token) = cancel {
            if let Err(cancelled) = token.check("shardsup") {
                terminate_all(&mut running);
                return Err(ShardsupError::Cancelled {
                    phase: cancelled.phase,
                });
            }
        }

        // -- admission ------------------------------------------------
        while running.len() < config.jobs {
            let now = Instant::now();
            let Some(pos) = pending
                .iter()
                .position(|&s| states[s].not_before.is_none_or(|t| t <= now))
            else {
                break;
            };
            let Some(shard) = pending.remove(pos) else {
                break;
            };
            states[shard].not_before = None;
            if is_complete(shard) {
                // Landed by an earlier attempt (or a previous supervisor
                // incarnation) — nothing to run.
                complete_shard(shard, &mut completed, &mut report, on_event);
                continue;
            }
            let attempt = states[shard].attempt;
            if states[shard].evicted {
                states[shard].evicted = false;
                report.readmissions += 1;
                if let Some(s) = shardsup {
                    s.readmissions.incr();
                }
                on_event(SupervisorEvent::Readmitted { shard });
            }
            let mut child = launch(shard, attempt).map_err(|e| {
                terminate_all(&mut running);
                ShardsupError::Launch {
                    shard,
                    message: e.to_string(),
                }
            })?;
            let pid = child.id();
            let Some(stdout) = child.stdout.take() else {
                let _ = child.kill();
                let _ = child.wait();
                terminate_all(&mut running);
                return Err(ShardsupError::Launch {
                    shard,
                    message: "launch closure must pipe the worker's stdout".to_string(),
                });
            };
            let reader_tx = tx.clone();
            // Reader threads are detached on purpose: each exits at its
            // pipe's EOF (worker exit), and a send into a dropped channel
            // is a silently ignored error.
            std::thread::spawn(move || {
                let reader = BufReader::new(stdout);
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    if reader_tx.send((shard, line)).is_err() {
                        break;
                    }
                }
            });
            report.workers_spawned += 1;
            if let Some(s) = shardsup {
                s.workers_spawned.incr();
            }
            on_event(SupervisorEvent::Spawned {
                shard,
                attempt,
                pid,
            });
            let now = Instant::now();
            running.push(RunningShard {
                shard,
                child,
                pid,
                started: now,
                last_event: now,
                last_rss_poll: now,
                evicting: false,
                stall_killed: false,
                redispatch_killed: false,
            });
        }

        if running.is_empty() && pending.is_empty() {
            break;
        }

        // -- heartbeat drain ------------------------------------------
        // One blocking receive bounds the loop cadence; the rest of the
        // queue drains without blocking.
        let mut lines: Vec<(usize, String)> = Vec::new();
        if running.is_empty() {
            // everything pending is in backoff — just wait a tick
            std::thread::sleep(config.poll_interval);
        } else {
            match rx.recv_timeout(config.poll_interval) {
                Ok(first) => lines.push(first),
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {}
            }
            while let Ok(more) = rx.try_recv() {
                lines.push(more);
            }
        }
        for (shard, line) in lines {
            match json::parse(&line) {
                Ok(value) => {
                    report.heartbeats_received += 1;
                    if let Some(s) = shardsup {
                        s.heartbeats_received.incr();
                    }
                    if let Some(rs) = running.iter_mut().find(|rs| rs.shard == shard) {
                        rs.last_event = Instant::now();
                    }
                    on_event(SupervisorEvent::Heartbeat { shard, line, value });
                }
                Err(_) => {
                    // Non-protocol noise on the pipe is not liveness: a
                    // worker spinning garbage must still stall out.
                }
            }
        }

        // -- reap + watchdogs -----------------------------------------
        let mut i = 0;
        while i < running.len() {
            let exited = match running[i].child.try_wait() {
                Ok(Some(status)) => Some(status),
                Ok(None) => None,
                Err(_) => {
                    // Treat an unreadable child as exited-by-signal.
                    let _ = running[i].child.kill();
                    running[i].child.wait().ok()
                }
            };
            let Some(status) = exited else {
                let rs = &mut running[i];
                let now = Instant::now();
                // Stall watchdog: silence past the timeout means a hung
                // worker (armed failpoint, livelock, swapped-out host).
                if !rs.stall_killed
                    && !rs.redispatch_killed
                    && now.duration_since(rs.last_event) > config.stall_timeout
                {
                    let silent_for = now.duration_since(rs.last_event);
                    let _ = rs.child.kill();
                    rs.stall_killed = true;
                    report.stalls_detected += 1;
                    if let Some(s) = shardsup {
                        s.stalls_detected.incr();
                    }
                    on_event(SupervisorEvent::Stalled {
                        shard: rs.shard,
                        pid: rs.pid,
                        silent_for,
                    });
                }
                // RSS watchdog: SIGTERM over the ceiling; the worker
                // checkpoints at the next band boundary and exits 75.
                if let Some(limit) = config.rss_limit_bytes {
                    if !rs.evicting
                        && !rs.stall_killed
                        && now.duration_since(rs.last_rss_poll) >= config.rss_poll_interval
                    {
                        rs.last_rss_poll = now;
                        if let Some(rss) = vm_rss_bytes(rs.pid) {
                            if rss > limit {
                                send_signal(rs.pid, SIGTERM);
                                rs.evicting = true;
                                report.rss_evictions += 1;
                                if let Some(s) = shardsup {
                                    s.rss_evictions.incr();
                                }
                                on_event(SupervisorEvent::RssEvicted {
                                    shard: rs.shard,
                                    pid: rs.pid,
                                    rss_bytes: rss,
                                    limit_bytes: limit,
                                });
                            }
                        }
                    }
                }
                i += 1;
                continue;
            };

            let rs = running.swap_remove(i);
            let shard = rs.shard;
            if is_complete(shard) {
                completed_walls.push(rs.started.elapsed());
                complete_shard(shard, &mut completed, &mut report, on_event);
                continue;
            }
            let evicted_cleanly =
                rs.evicting && status.code() == Some(EXIT_EVICTED) && !rs.stall_killed;
            if evicted_cleanly || rs.redispatch_killed {
                // Uncharged requeue: cooperative eviction checkpointed at
                // a band boundary; a straggler kill resumes from its own
                // checkpoint (or returns instantly off the landed
                // result). Queued at the back so other shards get the
                // freed slot first.
                states[shard].evicted = evicted_cleanly;
                pending.push_back(shard);
                continue;
            }
            // Charged crash: nonzero exit, kill -9, OOM-kill, stall kill,
            // or a "clean" exit that landed nothing.
            states[shard].attempt += 1;
            let attempt = states[shard].attempt;
            report.respawns += 1;
            if let Some(s) = shardsup {
                s.respawns.incr();
            }
            on_event(SupervisorEvent::Crashed {
                shard,
                attempt,
                status: render_status(&status),
            });
            if attempt > config.max_respawns {
                terminate_all(&mut running);
                return Err(ShardsupError::ShardFailed {
                    shard,
                    attempts: attempt, // one launch per charged crash
                    last: render_status(&status),
                });
            }
            let exp = attempt.saturating_sub(1).min(16);
            let delay = config
                .backoff
                .saturating_mul(1u32 << exp)
                .min(config.backoff_cap);
            states[shard].not_before = Some(Instant::now() + delay);
            on_event(SupervisorEvent::Backoff {
                shard,
                attempt,
                delay,
            });
            pending.push_back(shard);
        }

        // -- straggler re-dispatch ------------------------------------
        // Only when exactly one shard remains, it has run conspicuously
        // longer than the median completed shard, and it has not been
        // re-dispatched before. The respawn resumes from the shard's own
        // checkpoint, so the kill never loses more than one band.
        if pending.is_empty() && running.len() == 1 && !completed_walls.is_empty() {
            let rs = &mut running[0];
            if !states[rs.shard].redispatched && !rs.stall_killed && !rs.redispatch_killed {
                let mut walls = completed_walls.clone();
                walls.sort_unstable();
                let median = walls[walls.len() / 2];
                let threshold = median.mul_f64(config.straggler_factor.max(1.0));
                let elapsed = rs.started.elapsed();
                if elapsed > threshold {
                    let _ = rs.child.kill();
                    rs.redispatch_killed = true;
                    states[rs.shard].redispatched = true;
                    report.stragglers_redispatched += 1;
                    if let Some(s) = shardsup {
                        s.stragglers_redispatched.incr();
                    }
                    on_event(SupervisorEvent::StragglerRedispatched {
                        shard: rs.shard,
                        pid: rs.pid,
                        elapsed,
                    });
                }
            }
        }
    }

    Ok(report)
}
