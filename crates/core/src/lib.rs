//! The core of the `fastmon` toolkit: the hidden-delay-fault (HDF) test
//! flow of *"Using Programmable Delay Monitors for Wear-Out and Early Life
//! Failure Prediction"* (DATE 2020).
//!
//! The flow (Fig. 4 of the paper) is implemented end to end:
//!
//! 1. **Topological analysis** — static timing classifies every small delay
//!    fault as at-speed detectable, timing redundant or FAST-testable
//!    ([`fastmon_faults::classify`], monitor-aware).
//! 2. **Timing-accurate fault simulation** — the waveform engine computes
//!    raw per-pattern, per-output difference intervals
//!    ([`DetectionAnalysis`]).
//! 3. **Detection-range construction** — glitch-filtered interval sets per
//!    fault (Definition 2).
//! 4. **Monitor-configuration analysis** — the shifted ranges
//!    `I_SR = I_FF + d` make previously unobservable effects testable and
//!    identify *at-speed monitor-detectable* faults, which leave the target
//!    set.
//! 5. **Target fault set** — everything that genuinely needs FAST.
//! 6. **Two-step schedule optimization** — minimum frequency count, then
//!    minimum pattern × configuration count per frequency, both solved as
//!    0-1 ILPs ([`fastmon_ilp`]), with the conventional and greedy
//!    baselines of the paper's tables.
//!
//! The entry point is [`HdfTestFlow`]; [`report`] builds the typed rows of
//! the paper's Tables I–III and the Fig. 3 coverage series.
//!
//! # Example
//!
//! ```
//! use fastmon_core::{FlowConfig, HdfTestFlow, Solver};
//! use fastmon_netlist::library;
//!
//! let circuit = library::s27();
//! let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
//! let patterns = flow.generate_patterns(None);
//! let analysis = flow.analyze(&patterns);
//! let schedule = flow.schedule(&analysis, Solver::Ilp);
//! // the optimized schedule covers every target fault
//! assert!(schedule.covers_all_targets(&analysis));
//! ```

// Robustness gate: library code must surface failures as typed errors
// (`FlowError` and friends), never via `unwrap`/`expect` (tests are
// exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod analysis;
mod checkpoint;
mod config;
mod diagnose;
mod discretize;
mod error;
mod flow;
mod schedule;

pub mod report;
pub mod shardsup;

pub use analysis::{DetectionAnalysis, FaultVerdict};
pub use checkpoint::{
    fnv1a, CampaignCheckpoint, CheckpointDir, CheckpointError, CheckpointStore, GcReport, JobStore,
    CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use config::FlowConfig;
pub use diagnose::{diagnose, predicted_observations, DiagnosisCandidate, Observation};
pub use discretize::{discretize, elementary_intervals};
pub use error::{FlowError, ScheduleError};
pub use flow::{CampaignProgress, FlowCounts, HdfTestFlow};
pub use schedule::{FrequencySelection, ScheduleEntry, Solver, TestSchedule, TestTimeModel};
pub use shardsup::{
    parse_shard_count, ShardSpec, ShardsupError, SupervisorConfig, SupervisorEvent,
    SupervisorReport, MAX_SHARDS,
};
