use fastmon_atpg::{try_generate_with_metrics, AtpgConfig, AtpgError, TestSet};
use fastmon_faults::{classify, DetectionRange, FaultClass, FaultList, Polarity};
use fastmon_monitor::{ConfigSet, MonitorPlacement};
use fastmon_netlist::{Circuit, NetlistError, PinRef};
use fastmon_obs::MetricsRegistry;
use fastmon_timing::{ClockSpec, DelayAnnotation, DelayModel, Sta};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::checkpoint::{fnv1a, CampaignCheckpoint, CheckpointError, CheckpointStore};
use crate::schedule::{select_frequencies, select_patterns, ScheduleContext};
use crate::{
    DetectionAnalysis, FlowConfig, FlowError, FrequencySelection, ScheduleError, Solver,
    TestSchedule,
};

/// Fault-population counters of the structural analysis (step ① of the
/// flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowCounts {
    /// Full `δ = 6σ` fault population (two per gate pin).
    pub initial: usize,
    /// Removed: a plain at-speed test already fails.
    pub at_speed_detectable: usize,
    /// Removed: no FAST frequency (even monitor-assisted) can see the
    /// effect.
    pub timing_redundant: usize,
    /// FAST-relevant candidates handed to fault simulation.
    pub candidates: usize,
    /// Candidates actually simulated (after optional sampling).
    pub sampled: usize,
}

/// A campaign progress event surfaced by
/// [`HdfTestFlow::analyze_resumable_observed`]. Every event corresponds
/// to a durable on-disk state, so observers may treat each one as a
/// crash-safe resume point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignProgress {
    /// A valid same-fingerprint checkpoint was found; the campaign skips
    /// every pattern before `next_pattern`.
    Resumed {
        /// First pattern that will actually be simulated.
        next_pattern: usize,
        /// Total patterns in the campaign.
        total_patterns: usize,
        /// Trace run id of the process that wrote the checkpoint (from
        /// its `.run` sidecar), when one survived — lets observers link
        /// this run's event trail to its predecessor's.
        prev_run: Option<u64>,
    },
    /// A pattern band finished and its checkpoint reached disk.
    BandCheckpointed {
        /// First pattern not yet simulated.
        next_pattern: usize,
        /// Total patterns in the campaign.
        total_patterns: usize,
    },
}

/// The prepared HDF test flow of the paper (Fig. 4): circuit, delays,
/// clocks, monitors — everything except patterns and the simulation
/// campaign.
///
/// Typical use:
///
/// 1. [`HdfTestFlow::prepare`] — synthesize timing, place monitors.
/// 2. [`HdfTestFlow::generate_patterns`] — transition-fault ATPG
///    (or bring your own [`TestSet`]).
/// 3. [`HdfTestFlow::analyze`] — structural filtering + timing-accurate
///    fault simulation → [`DetectionAnalysis`].
/// 4. [`HdfTestFlow::schedule`] / [`HdfTestFlow::schedule_with_coverage`]
///    — two-step optimization → [`TestSchedule`].
#[derive(Debug)]
pub struct HdfTestFlow<'c> {
    circuit: &'c Circuit,
    config: FlowConfig,
    annot: DelayAnnotation,
    sta: Sta,
    clock: ClockSpec,
    configs: ConfigSet,
    placement: MonitorPlacement,
    counts: FlowCounts,
    candidate_faults: FaultList,
    metrics: MetricsRegistry,
    cancel: Option<fastmon_obs::CancelToken>,
}

impl<'c> HdfTestFlow<'c> {
    /// Prepares the flow: annotates delays (process variation σ), runs
    /// STA, derives the clock (`t_nom = 1.05·cpl`, `t_min = t_nom/3`),
    /// builds the monitor configuration set and places monitors at long
    /// path ends, then structurally classifies the full fault population.
    ///
    /// # Panics
    ///
    /// Panics on degenerate inputs (e.g. an empty circuit). Use
    /// [`HdfTestFlow::try_prepare`] to handle untrusted inputs without
    /// panicking.
    #[must_use]
    pub fn prepare(circuit: &'c Circuit, config: &FlowConfig) -> Self {
        match Self::try_prepare(circuit, config) {
            Ok(flow) => flow,
            Err(e) => panic!("cannot prepare HDF test flow: {e}"),
        }
    }

    /// Fallible variant of [`HdfTestFlow::prepare`].
    ///
    /// # Errors
    ///
    /// * [`FlowError::Netlist`] with [`NetlistError::EmptyCircuit`] when
    ///   the circuit holds no gates — no clock can be derived from it.
    /// * [`FlowError::Timing`] when the derived delay annotation is
    ///   invalid (NaN/negative delays, non-positive gate sigma).
    pub fn try_prepare(circuit: &'c Circuit, config: &FlowConfig) -> Result<Self, FlowError> {
        if circuit.is_empty() {
            return Err(NetlistError::EmptyCircuit {
                circuit: circuit.name().to_owned(),
            }
            .into());
        }
        let model = DelayModel::nangate45_like();
        let annot = DelayAnnotation::with_variation(circuit, &model, config.sigma_rel, config.seed);
        Self::try_prepare_with_annotation(circuit, config, annot)
    }

    /// Like [`HdfTestFlow::try_prepare`], but with caller-supplied delays
    /// (e.g. parsed from an SDF file via `fastmon_timing::sdf::parse`)
    /// instead of the synthesized NanGate45-like model + process
    /// variation.
    ///
    /// # Errors
    ///
    /// Same as [`HdfTestFlow::try_prepare`]; additionally any invalid
    /// annotation (wrong circuit, NaN/negative delays) is
    /// [`FlowError::Timing`].
    pub fn try_prepare_with_annotation(
        circuit: &'c Circuit,
        config: &FlowConfig,
        annot: DelayAnnotation,
    ) -> Result<Self, FlowError> {
        if circuit.is_empty() {
            return Err(NetlistError::EmptyCircuit {
                circuit: circuit.name().to_owned(),
            }
            .into());
        }
        let metrics = MetricsRegistry::new();
        annot.validate_for(circuit)?;
        let sta = Sta::analyze_with_metrics(circuit, &annot, Some(&metrics.sta));
        let clock = ClockSpec::new(
            (1.0 + config.clock_margin) * sta.critical_path_length(),
            config.fmax_factor,
        );
        let configs = ConfigSet::new(
            config
                .monitor_delays_rel
                .iter()
                .map(|r| r * clock.t_nom)
                .collect(),
        );
        let placement = MonitorPlacement::at_long_path_ends(circuit, &sta, config.monitor_fraction);

        // which fault sites reach a monitored observation point (reverse
        // reachability from monitored capture signals)
        let mut reaches_monitor = vec![false; circuit.len()];
        for op_index in placement.monitored_indices() {
            reaches_monitor[circuit.observe_points()[op_index].driver.index()] = true;
        }
        for &id in circuit.topo_order().iter().rev() {
            if reaches_monitor[id.index()] {
                for &fi in circuit.node(id).fanins() {
                    reaches_monitor[fi.index()] = true;
                }
            }
        }

        // step ①: structural classification
        let all = FaultList::sized(circuit, |id| config.delta_sigma * annot.sigma(id));
        let at_speed = std::cell::Cell::new(0usize);
        let redundant = std::cell::Cell::new(0usize);
        let (candidates, _) = all.filtered(|fid| {
            let fault = all.fault(fid);
            let shift = if reaches_monitor[fault.site.node().index()] {
                configs.max_shift()
            } else {
                0.0
            };
            match classify(circuit, &sta, &clock, fault, shift) {
                FaultClass::AtSpeedDetectable => {
                    at_speed.set(at_speed.get() + 1);
                    false
                }
                FaultClass::TimingRedundant => {
                    redundant.set(redundant.get() + 1);
                    false
                }
                FaultClass::FastTestable => true,
            }
        });
        let (at_speed, redundant) = (at_speed.get(), redundant.get());
        let initial = all.len();
        let num_candidates = candidates.len();

        // optional deterministic sampling for scaled experiments
        let candidate_faults = match config.max_faults {
            Some(cap) if num_candidates > cap => {
                let mut idx: Vec<usize> = (0..num_candidates).collect();
                let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5a5a_1234);
                idx.shuffle(&mut rng);
                idx.truncate(cap);
                idx.sort_unstable();
                let keep: std::collections::HashSet<usize> = idx.into_iter().collect();
                candidates.filtered(|fid| keep.contains(&fid.index())).0
            }
            _ => candidates,
        };

        let counts = FlowCounts {
            initial,
            at_speed_detectable: at_speed,
            timing_redundant: redundant,
            candidates: num_candidates,
            sampled: candidate_faults.len(),
        };

        Ok(HdfTestFlow {
            circuit,
            config: config.clone(),
            annot,
            sta,
            clock,
            configs,
            placement,
            counts,
            candidate_faults,
            metrics,
            // A `FASTMON_DEADLINE_SECS` deadline token is armed from the
            // environment; `with_cancel` replaces it for in-process control.
            cancel: fastmon_obs::cancel::from_env(),
        })
    }

    /// Installs a cooperative-cancellation token: the cancellable flow
    /// steps ([`HdfTestFlow::try_generate_patterns`],
    /// [`HdfTestFlow::try_analyze`], [`HdfTestFlow::analyze_resumable`],
    /// the ILP scheduler) observe it at safe boundaries and return
    /// [`FlowError::Cancelled`]. Replaces any token armed from
    /// `FASTMON_DEADLINE_SECS`.
    #[must_use]
    pub fn with_cancel(mut self, token: fastmon_obs::CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The active cancellation token, if any (installed via
    /// [`HdfTestFlow::with_cancel`] or armed from
    /// `FASTMON_DEADLINE_SECS`).
    #[must_use]
    pub fn cancel_token(&self) -> Option<&fastmon_obs::CancelToken> {
        self.cancel.as_ref()
    }

    /// Stamps the request→stop latency into
    /// `robustness.cancel_latency_ms` the first time a phase surfaces a
    /// [`FlowError::Cancelled`].
    fn record_cancel_latency(&self) {
        if let Some(latency) = self
            .cancel
            .as_ref()
            .and_then(fastmon_obs::CancelToken::latency_since_request)
        {
            let ms = u64::try_from(latency.as_millis()).unwrap_or(u64::MAX);
            self.metrics.robustness.cancel_latency_ms.add(ms);
        }
    }

    /// The circuit under test.
    #[must_use]
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The flow configuration.
    #[must_use]
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// The annotated (process-varied) delays.
    #[must_use]
    pub fn annotation(&self) -> &DelayAnnotation {
        &self.annot
    }

    /// The static timing analysis.
    #[must_use]
    pub fn sta(&self) -> &Sta {
        &self.sta
    }

    /// The derived clock specification.
    #[must_use]
    pub fn clock(&self) -> &ClockSpec {
        &self.clock
    }

    /// The monitor delay-element set.
    #[must_use]
    pub fn configs(&self) -> &ConfigSet {
        &self.configs
    }

    /// The monitor placement (`|M|` = [`MonitorPlacement::count`]).
    #[must_use]
    pub fn placement(&self) -> &MonitorPlacement {
        &self.placement
    }

    /// The structural fault counters.
    #[must_use]
    pub fn counts(&self) -> FlowCounts {
        self.counts
    }

    /// The FAST-relevant candidate faults (after sampling).
    #[must_use]
    pub fn candidate_faults(&self) -> &FaultList {
        &self.candidate_faults
    }

    /// The campaign-scoped telemetry registry. Every phase of this flow —
    /// STA, ATPG, fault simulation, checkpoint I/O and schedule
    /// optimization — records its counters here, so two concurrent
    /// campaigns in one process never mix numbers. Read it after
    /// [`HdfTestFlow::analyze`] / [`HdfTestFlow::schedule`] for the full
    /// picture.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Runs the transition-fault ATPG, optionally capped at
    /// `pattern_budget` patterns (the paper's `|P|` per circuit).
    ///
    /// # Panics
    ///
    /// Panics if generation fails, which is only reachable with an armed
    /// failpoint schedule or an already-cancelled token; use
    /// [`HdfTestFlow::try_generate_patterns`] in those settings.
    #[must_use]
    pub fn generate_patterns(&self, pattern_budget: Option<usize>) -> TestSet {
        match self.try_generate_patterns(pattern_budget) {
            Ok(set) => set,
            Err(e) => panic!("cannot generate patterns: {e}"),
        }
    }

    /// Fallible, cancellable variant of
    /// [`HdfTestFlow::generate_patterns`]: observes the flow's
    /// cancellation token between PODEM targets and the `atpg_grade` /
    /// `atpg_podem` failpoints.
    ///
    /// # Errors
    ///
    /// * [`FlowError::Cancelled`] when the token trips mid-generation,
    /// * [`FlowError::Atpg`] for injected or contained-panic ATPG
    ///   failures.
    pub fn try_generate_patterns(
        &self,
        pattern_budget: Option<usize>,
    ) -> Result<TestSet, FlowError> {
        let atpg = AtpgConfig {
            seed: self.config.seed,
            max_patterns: pattern_budget,
            threads: self.config.threads,
            ..AtpgConfig::default()
        };
        let result = try_generate_with_metrics(
            self.circuit,
            &atpg,
            Some(&self.metrics.atpg),
            self.cancel.as_ref(),
        )
        .map_err(|e| match e {
            AtpgError::Cancelled { phase } => {
                self.record_cancel_latency();
                FlowError::Cancelled { phase }
            }
            other => {
                if matches!(other, AtpgError::WorkerPanicked { .. }) {
                    self.metrics.robustness.worker_panics_contained.incr();
                }
                FlowError::Atpg(other)
            }
        })?;
        Ok(result.test_set)
    }

    /// Like [`HdfTestFlow::generate_patterns`], but under the
    /// launch-on-capture (broadside) constraint: every pattern's capture
    /// vector is the functional next state of its launch vector. More
    /// realistic for standard scan chains, at the cost of some coverage.
    #[must_use]
    pub fn generate_patterns_broadside(&self, pattern_budget: Option<usize>) -> TestSet {
        let atpg = AtpgConfig {
            seed: self.config.seed,
            max_patterns: pattern_budget,
            threads: self.config.threads,
            ..AtpgConfig::default()
        };
        fastmon_atpg::broadside::generate_broadside(self.circuit, &atpg).test_set
    }

    /// Steps ②–⑤: timing-accurate fault simulation of the candidates,
    /// detection-range construction, monitor analysis and target-set
    /// extraction.
    ///
    /// Ignores the flow's cancellation token and failpoint injections
    /// cause a panic; use [`HdfTestFlow::try_analyze`] or
    /// [`HdfTestFlow::analyze_resumable`] under injection or deadlines.
    #[must_use]
    pub fn analyze(&self, patterns: &TestSet) -> DetectionAnalysis {
        DetectionAnalysis::compute_scoped(
            self.circuit,
            &self.annot,
            &self.clock,
            &self.configs,
            &self.placement,
            self.candidate_faults.clone(),
            patterns,
            self.config.glitch_threshold,
            self.config.effective_threads(),
            Some(&self.metrics),
        )
    }

    /// Fallible, cancellable variant of [`HdfTestFlow::analyze`] without
    /// checkpoint persistence: the campaign observes the flow's
    /// cancellation token at every pattern-band boundary and the
    /// `campaign_band` / `sim_worker` failpoints, and worker panics are
    /// contained into typed errors.
    ///
    /// # Errors
    ///
    /// * [`FlowError::Cancelled`] when the token trips between bands,
    /// * [`FlowError::Injected`] when the `campaign_band` failpoint fires,
    /// * [`FlowError::WorkerPanic`] when a simulation worker panics.
    pub fn try_analyze(&self, patterns: &TestSet) -> Result<DetectionAnalysis, FlowError> {
        let progress = CampaignCheckpoint {
            fingerprint: 0,
            next_pattern: 0,
            per_pattern: vec![Vec::new(); self.candidate_faults.len()],
            raw_union: vec![DetectionRange::new(); self.candidate_faults.len()],
        };
        DetectionAnalysis::compute_with_progress(
            self.circuit,
            &self.annot,
            &self.clock,
            &self.configs,
            &self.placement,
            self.candidate_faults.clone(),
            patterns,
            self.config.glitch_threshold,
            self.config.effective_threads(),
            Some(&self.metrics),
            self.cancel.as_ref(),
            progress,
            &mut |_| Ok(()),
        )
        .inspect_err(|e| {
            if matches!(e, FlowError::Cancelled { .. }) {
                self.record_cancel_latency();
            }
        })
    }

    /// Crash-safe variant of [`HdfTestFlow::analyze`]: the campaign
    /// persists a checkpoint into `store` after every pattern band, and a
    /// valid checkpoint of the *same* campaign (matched by fingerprint)
    /// resumes from the first unsimulated band instead of restarting.
    ///
    /// Corrupt, truncated, version-mismatched or foreign checkpoints are
    /// never fatal: a warning is logged to stderr and the campaign
    /// restarts cleanly. The checkpoint file is removed after a successful
    /// run. Resumed results are bit-identical to an uninterrupted run for
    /// any thread count on either side of the interruption.
    ///
    /// # Errors
    ///
    /// [`FlowError::Checkpoint`] when a checkpoint cannot be *written*
    /// (progress cannot be made durable) or when the store's test-only
    /// interruption hook fires.
    pub fn analyze_resumable(
        &self,
        patterns: &TestSet,
        store: &CheckpointStore,
    ) -> Result<DetectionAnalysis, FlowError> {
        self.analyze_resumable_observed(patterns, store, &mut |_| {})
    }

    /// [`HdfTestFlow::analyze_resumable`] with a progress observer: the
    /// daemon streams each [`CampaignProgress`] event to its client as a
    /// JSONL record. The observer runs *after* the corresponding
    /// checkpoint reached disk, so every reported band boundary is also a
    /// durable resume point.
    ///
    /// # Errors
    ///
    /// Same as [`HdfTestFlow::analyze_resumable`].
    pub fn analyze_resumable_observed(
        &self,
        patterns: &TestSet,
        store: &CheckpointStore,
        observe: &mut dyn FnMut(CampaignProgress),
    ) -> Result<DetectionAnalysis, FlowError> {
        self.analyze_list_resumable_observed(
            self.candidate_faults.clone(),
            self.campaign_fingerprint(patterns),
            patterns,
            store,
            observe,
        )
    }

    /// The checkpointed campaign driver shared by the whole-list and
    /// per-shard resumable entry points: `faults` is the (sub-)population
    /// to simulate and `fingerprint` keys the checkpoint's validity. The
    /// finished checkpoint is removed on success.
    fn analyze_list_resumable_observed(
        &self,
        faults: FaultList,
        fingerprint: u64,
        patterns: &TestSet,
        store: &CheckpointStore,
        observe: &mut dyn FnMut(CampaignProgress),
    ) -> Result<DetectionAnalysis, FlowError> {
        let analysis =
            self.analyze_list_resumable_keep(faults, fingerprint, patterns, store, observe)?;
        if let Err(e) = store.clear() {
            eprintln!(
                "warning: could not remove finished checkpoint {}: {e}",
                store.path().display(),
            );
        }
        Ok(analysis)
    }

    /// [`HdfTestFlow::analyze_list_resumable_observed`] minus the final
    /// checkpoint removal — the shard-worker path lands its result file
    /// *before* clearing the checkpoint, so a crash between the two never
    /// loses the completed campaign.
    fn analyze_list_resumable_keep(
        &self,
        faults: FaultList,
        fingerprint: u64,
        patterns: &TestSet,
        store: &CheckpointStore,
        observe: &mut dyn FnMut(CampaignProgress),
    ) -> Result<DetectionAnalysis, FlowError> {
        let fresh = || CampaignCheckpoint {
            fingerprint,
            next_pattern: 0,
            per_pattern: vec![Vec::new(); faults.len()],
            raw_union: vec![DetectionRange::new(); faults.len()],
        };
        let ckpt = &self.metrics.checkpoint;
        let t_load = std::time::Instant::now();
        let loaded = {
            let _span = fastmon_obs::span!("checkpoint_load");
            store.load()
        };
        if !matches!(loaded, Err(CheckpointError::Missing)) {
            let load_ns = elapsed_ns(t_load);
            ckpt.loads.incr();
            ckpt.load_ns.add(load_ns);
            self.metrics.latency.checkpoint_load.record(load_ns);
        }
        let progress = match loaded {
            Ok(cp)
                if cp.fingerprint == fingerprint
                    && cp.per_pattern.len() == faults.len()
                    && cp.next_pattern <= patterns.len() =>
            {
                ckpt.resumes.incr();
                let prev_run = store.predecessor_run();
                if let Some(prev) = prev_run {
                    fastmon_obs::emit_chain(prev);
                }
                observe(CampaignProgress::Resumed {
                    next_pattern: cp.next_pattern,
                    total_patterns: patterns.len(),
                    prev_run,
                });
                cp
            }
            Ok(cp) => {
                eprintln!(
                    "warning: ignoring checkpoint {}: {} (restarting from scratch)",
                    store.path().display(),
                    CheckpointError::FingerprintMismatch {
                        got: cp.fingerprint,
                        expected: fingerprint,
                    },
                );
                fresh()
            }
            Err(CheckpointError::Missing) => fresh(),
            Err(e) => {
                eprintln!(
                    "warning: ignoring unreadable checkpoint {}: {e} (restarting from scratch)",
                    store.path().display(),
                );
                fresh()
            }
        };
        let retry = RetryPolicy::from_env();
        let analysis = DetectionAnalysis::compute_with_progress(
            self.circuit,
            &self.annot,
            &self.clock,
            &self.configs,
            &self.placement,
            faults,
            patterns,
            self.config.glitch_threshold,
            self.config.effective_threads(),
            Some(&self.metrics),
            self.cancel.as_ref(),
            progress,
            &mut |cp| {
                let t_save = std::time::Instant::now();
                let bytes = {
                    let _span = fastmon_obs::span!("checkpoint_save");
                    save_with_retry(store, cp, &retry, &self.metrics)?
                };
                let save_ns = elapsed_ns(t_save);
                ckpt.saves.incr();
                ckpt.save_ns.add(save_ns);
                ckpt.save_bytes.add(bytes);
                self.metrics.latency.checkpoint_save.record(save_ns);
                observe(CampaignProgress::BandCheckpointed {
                    next_pattern: cp.next_pattern,
                    total_patterns: patterns.len(),
                });
                Ok(())
            },
        )
        .inspect_err(|e| {
            if matches!(e, FlowError::Cancelled { .. }) {
                self.record_cancel_latency();
            }
        })?;
        Ok(analysis)
    }

    /// The contiguous candidate ranges of an `n`-way shard partition:
    /// shard `s` owns `[s·|Φ|/n, (s+1)·|Φ|/n)`. A shard count of 0 is
    /// treated as 1; counts above the candidate population yield trailing
    /// empty shards (harmless to run and to merge).
    #[must_use]
    pub fn shard_ranges(&self, shards: usize) -> Vec<std::ops::Range<usize>> {
        let n = self.candidate_faults.len();
        let shards = shards.max(1);
        (0..shards)
            .map(|s| (s * n / shards)..((s + 1) * n / shards))
            .collect()
    }

    /// Fallible, cancellable campaign over shard `shard` of a `shards`-way
    /// partition of the candidates (see [`HdfTestFlow::shard_ranges`]).
    /// The per-fault results are bit-identical to the corresponding slice
    /// of a whole-population run; [`DetectionAnalysis::merge`] reassembles
    /// the full analysis.
    ///
    /// # Errors
    ///
    /// Same as [`HdfTestFlow::try_analyze`].
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shards`.
    pub fn try_analyze_shard(
        &self,
        patterns: &TestSet,
        shard: usize,
        shards: usize,
    ) -> Result<DetectionAnalysis, FlowError> {
        let range = self.shard_ranges(shards)[shard].clone();
        let faults = self.candidate_faults.slice(range);
        let progress = CampaignCheckpoint {
            fingerprint: 0,
            next_pattern: 0,
            per_pattern: vec![Vec::new(); faults.len()],
            raw_union: vec![DetectionRange::new(); faults.len()],
        };
        DetectionAnalysis::compute_with_progress(
            self.circuit,
            &self.annot,
            &self.clock,
            &self.configs,
            &self.placement,
            faults,
            patterns,
            self.config.glitch_threshold,
            self.config.effective_threads(),
            Some(&self.metrics),
            self.cancel.as_ref(),
            progress,
            &mut |_| Ok(()),
        )
        .inspect_err(|e| {
            if matches!(e, FlowError::Cancelled { .. }) {
                self.record_cancel_latency();
            }
        })
    }

    /// In-process sharded campaign: runs every shard of a `shards`-way
    /// partition in order and merges the results. Bit-identical to
    /// [`HdfTestFlow::try_analyze`] for any shard count — this is the
    /// reference against which distributed shard execution is validated.
    ///
    /// # Errors
    ///
    /// Same as [`HdfTestFlow::try_analyze`]; [`FlowError::ShardMerge`] is
    /// unreachable here because every shard runs against the same
    /// `patterns`.
    pub fn try_analyze_sharded(
        &self,
        patterns: &TestSet,
        shards: usize,
    ) -> Result<DetectionAnalysis, FlowError> {
        let shards = shards.max(1);
        let mut parts = Vec::with_capacity(shards);
        for shard in 0..shards {
            parts.push(self.try_analyze_shard(patterns, shard, shards)?);
        }
        DetectionAnalysis::merge(parts)
    }

    /// Crash-safe sharded campaign: shard `i` persists its own checkpoint
    /// `shard-<i>-of-<n>.ckpt` under `dir` and resumes independently, so a
    /// crash only loses progress inside the interrupted shard's current
    /// band. `observe` receives each shard's progress events tagged with
    /// the shard index. Finished shard checkpoints are removed; the merged
    /// result is bit-identical to [`HdfTestFlow::analyze`] for any shard
    /// or thread count.
    ///
    /// # Errors
    ///
    /// Same as [`HdfTestFlow::analyze_resumable`].
    pub fn analyze_sharded_resumable_observed(
        &self,
        patterns: &TestSet,
        shards: usize,
        dir: &std::path::Path,
        observe: &mut dyn FnMut(usize, CampaignProgress),
    ) -> Result<DetectionAnalysis, FlowError> {
        let shards = shards.max(1);
        let mut parts = Vec::with_capacity(shards);
        for shard in 0..shards {
            parts.push(self.analyze_shard_resumable_observed(
                patterns,
                shard,
                shards,
                dir,
                &mut |progress| observe(shard, progress),
            )?);
        }
        DetectionAnalysis::merge(parts)
    }

    /// Fingerprint keying shard `shard` of a `shards`-way partition of
    /// this campaign: the campaign fingerprint combined with the shard
    /// coordinates, so a repartitioned rerun never resumes from (or
    /// merges) a foreign slice.
    #[must_use]
    pub fn shard_fingerprint(&self, patterns: &TestSet, shard: usize, shards: usize) -> u64 {
        let mut bytes = Vec::with_capacity(24);
        bytes.extend_from_slice(&self.campaign_fingerprint(patterns).to_le_bytes());
        bytes.extend_from_slice(&(shard as u64).to_le_bytes());
        bytes.extend_from_slice(&(shards as u64).to_le_bytes());
        fnv1a(&bytes)
    }

    /// Where shard `shard` of a `shards`-way campaign under `dir` keeps
    /// its resumable checkpoint.
    #[must_use]
    pub fn shard_checkpoint_path(
        dir: &std::path::Path,
        shard: usize,
        shards: usize,
    ) -> std::path::PathBuf {
        dir.join(format!("shard-{shard}-of-{shards}.ckpt"))
    }

    /// Where shard `shard` of a `shards`-way campaign under `dir` lands
    /// its completed result file (same `FMCK` codec as the checkpoint:
    /// atomic tmp+rename, FNV-checksummed).
    #[must_use]
    pub fn shard_result_path(
        dir: &std::path::Path,
        shard: usize,
        shards: usize,
    ) -> std::path::PathBuf {
        dir.join(format!("shard-{shard}-of-{shards}.result"))
    }

    /// Whether shard `shard`'s result file under `dir` exists and
    /// validates for this exact campaign and partition (the supervisor's
    /// `is_complete` probe — cheap: no finalization).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shards`.
    #[must_use]
    pub fn shard_result_landed(
        &self,
        patterns: &TestSet,
        shard: usize,
        shards: usize,
        dir: &std::path::Path,
    ) -> bool {
        let fingerprint = self.shard_fingerprint(patterns, shard, shards);
        let range = self.shard_ranges(shards)[shard].clone();
        match CheckpointStore::new(Self::shard_result_path(dir, shard, shards)).load() {
            Ok(cp) => {
                cp.fingerprint == fingerprint
                    && cp.next_pattern == patterns.len()
                    && cp.per_pattern.len() == range.len()
            }
            Err(_) => false,
        }
    }

    /// Crash-safe campaign over one shard of a `shards`-way partition:
    /// the shard persists (and resumes from) its own
    /// `shard-<i>-of-<n>.ckpt` under `dir`; the finished checkpoint is
    /// removed.
    ///
    /// # Errors
    ///
    /// Same as [`HdfTestFlow::analyze_resumable`].
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shards`.
    pub fn analyze_shard_resumable_observed(
        &self,
        patterns: &TestSet,
        shard: usize,
        shards: usize,
        dir: &std::path::Path,
        observe: &mut dyn FnMut(CampaignProgress),
    ) -> Result<DetectionAnalysis, FlowError> {
        let fingerprint = self.shard_fingerprint(patterns, shard, shards);
        let range = self.shard_ranges(shards)[shard].clone();
        let store = CheckpointStore::new(Self::shard_checkpoint_path(dir, shard, shards));
        self.analyze_list_resumable_observed(
            self.candidate_faults.slice(range),
            fingerprint,
            patterns,
            &store,
            observe,
        )
    }

    /// The shard-worker entry point of the multi-process supervisor: runs
    /// shard `shard` (resuming from its checkpoint if one exists) and
    /// lands the completed raw results as `shard-<i>-of-<n>.result` under
    /// `dir`, returning the shard fingerprint the file is keyed by.
    ///
    /// Idempotent: if a valid result file for this exact shard already
    /// exists, nothing is simulated and the fingerprint is returned
    /// immediately — a supervisor can blindly re-dispatch a shard whose
    /// worker died after landing. The result is landed *before* the
    /// checkpoint is cleared, so a crash between the two steps costs
    /// nothing on the next attempt.
    ///
    /// # Errors
    ///
    /// Same as [`HdfTestFlow::analyze_resumable`].
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shards`.
    pub fn run_shard_to_result(
        &self,
        patterns: &TestSet,
        shard: usize,
        shards: usize,
        dir: &std::path::Path,
        observe: &mut dyn FnMut(CampaignProgress),
    ) -> Result<u64, FlowError> {
        let fingerprint = self.shard_fingerprint(patterns, shard, shards);
        let range = self.shard_ranges(shards)[shard].clone();
        let result_store = CheckpointStore::new(Self::shard_result_path(dir, shard, shards));
        if let Ok(cp) = result_store.load() {
            if cp.fingerprint == fingerprint
                && cp.next_pattern == patterns.len()
                && cp.per_pattern.len() == range.len()
            {
                return Ok(fingerprint);
            }
        }
        let ckpt_store = CheckpointStore::new(Self::shard_checkpoint_path(dir, shard, shards));
        let analysis = self.analyze_list_resumable_keep(
            self.candidate_faults.slice(range),
            fingerprint,
            patterns,
            &ckpt_store,
            observe,
        )?;
        let result = CampaignCheckpoint {
            fingerprint,
            next_pattern: patterns.len(),
            per_pattern: analysis.per_pattern,
            raw_union: analysis.raw_union,
        };
        result_store.save(&result).map_err(FlowError::Checkpoint)?;
        if let Err(e) = ckpt_store.clear() {
            eprintln!(
                "warning: could not remove finished shard checkpoint {}: {e}",
                ckpt_store.path().display(),
            );
        }
        Ok(fingerprint)
    }

    /// Loads and finalizes the landed result of one shard (see
    /// [`HdfTestFlow::run_shard_to_result`]): the derived ranges and
    /// verdicts are reconstructed from the raw results, bit-identical to
    /// the analysis the worker computed.
    ///
    /// # Errors
    ///
    /// [`FlowError::ShardResult`] when the file is missing, unreadable,
    /// keyed by a different campaign/partition, or incomplete.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shards`.
    pub fn load_shard_result(
        &self,
        patterns: &TestSet,
        shard: usize,
        shards: usize,
        dir: &std::path::Path,
    ) -> Result<DetectionAnalysis, FlowError> {
        let bad = |reason: String| FlowError::ShardResult {
            shard,
            shards,
            reason,
        };
        let fingerprint = self.shard_fingerprint(patterns, shard, shards);
        let range = self.shard_ranges(shards)[shard].clone();
        let store = CheckpointStore::new(Self::shard_result_path(dir, shard, shards));
        let cp = store.load().map_err(|e| bad(e.to_string()))?;
        if cp.fingerprint != fingerprint {
            return Err(bad(format!(
                "fingerprint {:016x} does not match expected {fingerprint:016x}",
                cp.fingerprint
            )));
        }
        if cp.next_pattern != patterns.len() {
            return Err(bad(format!(
                "incomplete: simulated {} of {} pattern(s)",
                cp.next_pattern,
                patterns.len()
            )));
        }
        if cp.per_pattern.len() != range.len() {
            return Err(bad(format!(
                "fault count {} does not match the shard's {} candidate(s)",
                cp.per_pattern.len(),
                range.len()
            )));
        }
        Ok(DetectionAnalysis::finalize(
            self.candidate_faults.slice(range),
            patterns.len(),
            cp.per_pattern,
            cp.raw_union,
            &self.placement,
            &self.configs,
            &self.clock,
        ))
    }

    /// Deterministic merge of all landed shard results under `dir` (see
    /// [`HdfTestFlow::run_shard_to_result`]): loads every
    /// `shard-<i>-of-<n>.result`, finalizes each, and merges — the result
    /// fingerprint is bit-identical to [`HdfTestFlow::try_analyze`] and
    /// [`HdfTestFlow::try_analyze_sharded`].
    ///
    /// # Errors
    ///
    /// [`FlowError::ShardResult`] when any shard's file is missing or
    /// invalid; [`FlowError::ShardMerge`] is unreachable for files this
    /// method accepts (completeness is validated per shard).
    pub fn merge_shard_results(
        &self,
        patterns: &TestSet,
        shards: usize,
        dir: &std::path::Path,
    ) -> Result<DetectionAnalysis, FlowError> {
        let shards = shards.max(1);
        let mut parts = Vec::with_capacity(shards);
        for shard in 0..shards {
            parts.push(self.load_shard_result(patterns, shard, shards, dir)?);
        }
        DetectionAnalysis::merge(parts)
    }

    /// Fingerprint of everything the raw campaign results depend on:
    /// circuit, annotated delays, candidate faults, patterns, nominal
    /// clock and glitch threshold. Thread count and band size are
    /// deliberately excluded — the campaign merges per-pattern results in
    /// a fixed pattern order, so they cannot change the outcome.
    ///
    /// The daemon keys per-job checkpoint directories
    /// ([`crate::CheckpointDir`]) and landed results by this value: a
    /// resubmitted identical job resumes instead of restarting.
    #[must_use]
    pub fn campaign_fingerprint(&self, patterns: &TestSet) -> u64 {
        let mut bytes = Vec::new();
        let push_u64 = |bytes: &mut Vec<u8>, v: u64| bytes.extend_from_slice(&v.to_le_bytes());
        let push_f64 = |bytes: &mut Vec<u8>, v: f64| {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        };
        bytes.extend_from_slice(self.circuit.name().as_bytes());
        push_u64(&mut bytes, self.circuit.len() as u64);
        for (id, _) in self.circuit.iter() {
            push_f64(&mut bytes, self.annot.rise(id));
            push_f64(&mut bytes, self.annot.fall(id));
            push_f64(&mut bytes, self.annot.sigma(id));
        }
        push_u64(&mut bytes, self.candidate_faults.len() as u64);
        for (_, fault) in self.candidate_faults.iter() {
            let (tag, node, pin) = match fault.site {
                PinRef::Output(n) => (0u8, n.index() as u64, 0u64),
                PinRef::Input(n, k) => (1u8, n.index() as u64, u64::from(k)),
            };
            bytes.push(tag);
            push_u64(&mut bytes, node);
            push_u64(&mut bytes, pin);
            bytes.push(match fault.polarity {
                Polarity::SlowToRise => 0,
                Polarity::SlowToFall => 1,
            });
            push_f64(&mut bytes, fault.delta);
        }
        push_u64(&mut bytes, patterns.len() as u64);
        for pattern in patterns.iter() {
            for &b in pattern.launch.iter().chain(pattern.capture.iter()) {
                bytes.push(u8::from(b));
            }
        }
        push_f64(&mut bytes, self.clock.t_nom);
        push_f64(&mut bytes, self.config.glitch_threshold);
        fnv1a(&bytes)
    }

    /// Step ⑥ (full coverage): two-step schedule optimization with the
    /// chosen solver.
    ///
    /// # Panics
    ///
    /// Panics if the covering instance is infeasible (cannot happen for
    /// analyses produced by this flow). Use [`HdfTestFlow::try_schedule`]
    /// for a non-panicking variant.
    #[must_use]
    pub fn schedule(&self, analysis: &DetectionAnalysis, solver: Solver) -> TestSchedule {
        match self.try_schedule(analysis, solver) {
            Ok(schedule) => schedule,
            Err(e) => panic!("cannot build schedule: {e}"),
        }
    }

    /// Fallible variant of [`HdfTestFlow::schedule`].
    ///
    /// # Errors
    ///
    /// [`ScheduleError::InfeasibleCover`] when some target fault is
    /// covered by no candidate frequency.
    pub fn try_schedule(
        &self,
        analysis: &DetectionAnalysis,
        solver: Solver,
    ) -> Result<TestSchedule, ScheduleError> {
        self.schedule_with_waivers(analysis, solver, 0)
    }

    /// Step ⑥ with a coverage target `cov ∈ (0, 1]` of the target faults
    /// (Table III): the frequency selection may leave
    /// `⌊(1 − cov)·|Φ_tar|⌋` faults uncovered.
    ///
    /// # Panics
    ///
    /// Panics if `cov` is outside `(0, 1]`. Use
    /// [`HdfTestFlow::try_schedule_with_coverage`] to handle untrusted
    /// coverage targets without panicking.
    #[must_use]
    pub fn schedule_with_coverage(
        &self,
        analysis: &DetectionAnalysis,
        solver: Solver,
        cov: f64,
    ) -> TestSchedule {
        match self.try_schedule_with_coverage(analysis, solver, cov) {
            Ok(schedule) => schedule,
            Err(e) => panic!("cannot build schedule: {e}"),
        }
    }

    /// Fallible variant of [`HdfTestFlow::schedule_with_coverage`].
    ///
    /// # Errors
    ///
    /// * [`ScheduleError::InvalidCoverage`] when `cov` lies outside
    ///   `(0, 1]` (including NaN).
    /// * [`ScheduleError::InfeasibleCover`] when the covering instance is
    ///   infeasible.
    pub fn try_schedule_with_coverage(
        &self,
        analysis: &DetectionAnalysis,
        solver: Solver,
        cov: f64,
    ) -> Result<TestSchedule, ScheduleError> {
        if !(cov > 0.0 && cov <= 1.0) {
            return Err(ScheduleError::InvalidCoverage { cov });
        }
        let waivers = ((1.0 - cov) * analysis.targets.len() as f64).floor() as usize;
        self.schedule_with_waivers(analysis, solver, waivers)
    }

    fn schedule_with_waivers(
        &self,
        analysis: &DetectionAnalysis,
        solver: Solver,
        waivers: usize,
    ) -> Result<TestSchedule, ScheduleError> {
        let ctx = ScheduleContext {
            analysis,
            placement: &self.placement,
            configs: &self.configs,
            clock: &self.clock,
            deadline: self.config.ilp_deadline,
            metrics: Some(&self.metrics.ilp),
            cancel: self.cancel.as_ref(),
        };
        let selection = select_frequencies(&ctx, solver, waivers)?;
        Ok(select_patterns(&ctx, solver, selection))
    }

    /// Only step-1 frequency selection (used by the Table II/III
    /// comparisons).
    ///
    /// # Panics
    ///
    /// Panics if the covering instance is infeasible (cannot happen for
    /// analyses produced by this flow).
    #[must_use]
    pub fn select_frequencies_only(
        &self,
        analysis: &DetectionAnalysis,
        solver: Solver,
        waivers: usize,
    ) -> FrequencySelection {
        let ctx = ScheduleContext {
            analysis,
            placement: &self.placement,
            configs: &self.configs,
            clock: &self.clock,
            deadline: self.config.ilp_deadline,
            metrics: Some(&self.metrics.ilp),
            cancel: self.cancel.as_ref(),
        };
        match select_frequencies(&ctx, solver, waivers) {
            Ok(selection) => selection,
            Err(e) => panic!("cannot select frequencies: {e}"),
        }
    }

    /// Fig. 3: HDF coverage of conventional FAST vs monitor-assisted FAST
    /// as a function of the `f_max/f_nom` ratio.
    ///
    /// The denominator is the *hidden* fault set: simulated candidates not
    /// detectable at nominal speed. The monitor curve uses the largest
    /// delay element (`t_nom/3`), as in the paper's figure.
    #[must_use]
    pub fn coverage_vs_fmax(
        &self,
        analysis: &DetectionAnalysis,
        factors: &[f64],
    ) -> Vec<crate::report::Fig3Point> {
        crate::report::fig3_series(self, analysis, factors)
    }
}

/// Saturating nanosecond conversion for latency counters.
fn elapsed_ns(since: std::time::Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Capped-exponential-backoff policy for transient checkpoint I/O.
///
/// Tuned via `FASTMON_CHECKPOINT_RETRIES` (extra attempts after the first,
/// default 3) and `FASTMON_CHECKPOINT_BACKOFF_MS` (initial sleep, default
/// 5 ms, doubling per retry, capped at 250 ms). Invalid values fall back
/// to the defaults with a warning — a bad knob must not take down a
/// campaign.
#[derive(Debug, Clone, Copy)]
struct RetryPolicy {
    retries: u32,
    backoff: std::time::Duration,
}

impl RetryPolicy {
    const BACKOFF_CAP: std::time::Duration = std::time::Duration::from_millis(250);

    fn from_env() -> Self {
        fn parse_env(key: &str, default: u64) -> u64 {
            match std::env::var(key) {
                Ok(raw) => raw.trim().parse().unwrap_or_else(|_| {
                    eprintln!("warning: ignoring invalid {key}={raw:?}");
                    default
                }),
                Err(_) => default,
            }
        }
        RetryPolicy {
            retries: u32::try_from(parse_env("FASTMON_CHECKPOINT_RETRIES", 3)).unwrap_or(u32::MAX),
            backoff: std::time::Duration::from_millis(
                parse_env("FASTMON_CHECKPOINT_BACKOFF_MS", 5).min(250),
            ),
        }
    }
}

/// Saves `cp`, retrying transient I/O failures (`CheckpointError::Io` —
/// which injected `checkpoint_write`/`checkpoint_rename` failures mimic)
/// with capped exponential backoff. Non-I/O errors (e.g. the test-only
/// interruption hook) are never retried. Every retry increments
/// `robustness.checkpoint_retries`.
fn save_with_retry(
    store: &CheckpointStore,
    cp: &CampaignCheckpoint,
    policy: &RetryPolicy,
    metrics: &MetricsRegistry,
) -> Result<u64, CheckpointError> {
    let mut delay = policy.backoff;
    let mut attempt = 0u32;
    loop {
        match store.save(cp) {
            Ok(bytes) => return Ok(bytes),
            Err(e @ CheckpointError::Io { .. }) if attempt < policy.retries => {
                attempt += 1;
                metrics.robustness.checkpoint_retries.incr();
                eprintln!(
                    "warning: checkpoint save attempt {attempt}/{} failed ({e}); retrying in {delay:?}",
                    policy.retries.saturating_add(1),
                );
                std::thread::sleep(delay);
                delay = (delay * 2).min(RetryPolicy::BACKOFF_CAP);
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_netlist::library;

    #[test]
    fn prepare_s27() {
        let c = library::s27();
        let flow = HdfTestFlow::prepare(&c, &FlowConfig::default());
        let counts = flow.counts();
        assert_eq!(counts.initial, 56);
        assert_eq!(
            counts.initial,
            counts.at_speed_detectable + counts.timing_redundant + counts.candidates
        );
        assert_eq!(counts.sampled, counts.candidates);
        assert_eq!(flow.placement().count(), 1);
        assert!(flow.clock().t_nom > flow.clock().t_min);
    }

    #[test]
    fn fault_sampling_caps_population() {
        let c = library::s27();
        let config = FlowConfig {
            max_faults: Some(5),
            ..FlowConfig::default()
        };
        let flow = HdfTestFlow::prepare(&c, &config);
        assert!(flow.counts().sampled <= 5);
        assert!(flow.counts().candidates >= flow.counts().sampled);
    }

    #[test]
    fn analyze_and_schedule_s27() {
        let c = library::s27();
        let flow = HdfTestFlow::prepare(&c, &FlowConfig::default());
        let patterns = flow.generate_patterns(None);
        assert!(!patterns.is_empty());
        let analysis = flow.analyze(&patterns);
        assert_eq!(analysis.num_faults(), flow.counts().sampled);
        // monitors never hurt
        assert!(analysis.detected_prop() >= analysis.detected_conv());
        for solver in [Solver::Conventional, Solver::Greedy, Solver::Ilp] {
            let schedule = flow.schedule(&analysis, solver);
            if solver != Solver::Conventional {
                assert!(
                    schedule.covers_all_targets(&analysis),
                    "{solver:?} must cover all targets"
                );
            }
            // every entry application list is non-empty
            for e in &schedule.entries {
                assert!(!e.applications.is_empty());
                assert!(!e.faults.is_empty());
            }
        }
    }

    #[test]
    fn scoped_metrics_cover_every_phase() {
        let c = library::s27();
        let flow = HdfTestFlow::prepare(&c, &FlowConfig::default());
        let m = flow.metrics();
        assert_eq!(m.sta.analyses.get(), 1);
        assert_eq!(m.sta.nodes_levelized.get(), c.len() as u64);
        let patterns = flow.generate_patterns(None);
        assert!(m.atpg.patterns_emitted.get() >= patterns.len() as u64);
        assert!(m.atpg.faults_detected.get() > 0);
        let analysis = flow.analyze(&patterns);
        assert!(m.sim.cones_simulated.get() + m.sim.cones_masked.get() > 0);
        let _ = flow.schedule(&analysis, Solver::Ilp);
        // stage a + one stage-b solve per scheduled frequency; tiny
        // instances may be fully solved by preprocessing (zero B&B nodes),
        // so only the solve count is guaranteed
        assert!(m.ilp.solves.get() >= 2);
        // a second flow starts from a clean slate
        let other = HdfTestFlow::prepare(&c, &FlowConfig::default());
        assert_eq!(other.metrics().sim.cones_simulated.get(), 0);
        assert_eq!(other.metrics().ilp.solves.get(), 0);
    }

    #[test]
    fn resumable_analyze_records_checkpoint_io() {
        let c = library::s27();
        let flow = HdfTestFlow::prepare(&c, &FlowConfig::default());
        let patterns = flow.generate_patterns(Some(6));
        let dir = std::env::temp_dir().join(format!(
            "fastmon-ckpt-metrics-{}-{}",
            std::process::id(),
            fastmon_obs::run_id(),
        ));
        let store = CheckpointStore::new(dir.join("s27.ckpt"));
        let analysis = flow.analyze_resumable(&patterns, &store).unwrap();
        assert_eq!(analysis.num_patterns, patterns.len());
        let m = &flow.metrics().checkpoint;
        assert!(m.saves.get() > 0, "every band persists a checkpoint");
        assert!(m.save_bytes.get() > 0);
        assert_eq!(m.resumes.get(), 0, "fresh run resumes nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ilp_never_needs_more_frequencies_than_greedy() {
        let c = library::s27();
        let flow = HdfTestFlow::prepare(&c, &FlowConfig::default());
        let patterns = flow.generate_patterns(None);
        let analysis = flow.analyze(&patterns);
        let greedy_sel = flow.select_frequencies_only(&analysis, Solver::Greedy, 0);
        let ilp_sel = flow.select_frequencies_only(&analysis, Solver::Ilp, 0);
        assert!(ilp_sel.periods.len() <= greedy_sel.periods.len());
        assert!(ilp_sel.optimal);
    }

    #[test]
    fn coverage_targets_monotone() {
        let c = library::s27();
        let flow = HdfTestFlow::prepare(&c, &FlowConfig::default());
        let patterns = flow.generate_patterns(None);
        let analysis = flow.analyze(&patterns);
        let mut last = usize::MAX;
        for cov in [1.0, 0.99, 0.9, 0.7] {
            let s = flow.schedule_with_coverage(&analysis, Solver::Ilp, cov);
            assert!(s.num_frequencies() <= last);
            last = s.num_frequencies();
        }
    }
}
