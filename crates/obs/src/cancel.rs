//! Cooperative cancellation for long-running flows.
//!
//! A [`CancelToken`] is a cheap, cloneable handle combining an explicit
//! cancel flag with an optional wall-clock deadline. Work loops call
//! [`CancelToken::check`] at natural boundaries (per pattern band, per
//! ATPG fault, per ILP node batch); the first check that observes the
//! cancellation records *when* it was observed so the flow can report the
//! request→stop latency (`robustness.cancel_latency_ms`).
//!
//! `FASTMON_DEADLINE_SECS=<float>` arms a deadline token from the
//! environment ([`from_env`]); the `run_all` driver sets it on children to
//! request a *soft* stop (checkpoint flushed, partial results returned
//! with structured notes) before escalating to a hard kill.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The typed error produced when a phase observes cancellation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cancelled {
    /// The flow phase that observed the cancellation.
    pub phase: &'static str,
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run cancelled during {}", self.phase)
    }
}

impl Error for Cancelled {}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// When cancellation was requested (explicit `cancel()`) or first
    /// observed past the deadline — the start of the latency window.
    requested_at: OnceLock<Instant>,
}

/// A cloneable cooperative-cancellation handle.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](Self::cancel) is called.
    #[must_use]
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                requested_at: OnceLock::new(),
            }),
        }
    }

    /// A token that auto-cancels once `budget` has elapsed from now.
    #[must_use]
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
                requested_at: OnceLock::new(),
            }),
        }
    }

    /// Requests cancellation. Idempotent; the first call stamps the
    /// latency-window start.
    pub fn cancel(&self) {
        self.inner.requested_at.get_or_init(Instant::now);
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once cancellation has been requested or the deadline passed.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                // The deadline itself is when the "request" happened.
                self.inner.requested_at.get_or_init(|| deadline);
                self.inner.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Returns `Err(Cancelled { phase })` once cancellation is observed.
    ///
    /// # Errors
    ///
    /// Fails when the token has been cancelled or its deadline passed.
    pub fn check(&self, phase: &'static str) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled { phase })
        } else {
            Ok(())
        }
    }

    /// Time elapsed since cancellation was requested, if it was. This is
    /// the request→now latency a graceful shutdown reports.
    #[must_use]
    pub fn latency_since_request(&self) -> Option<Duration> {
        self.inner
            .requested_at
            .get()
            .map(|t| Instant::now().saturating_duration_since(*t))
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// Builds a deadline token from `FASTMON_DEADLINE_SECS` (float seconds),
/// or `None` when unset/invalid. Invalid values warn rather than abort —
/// a bad knob should not take down a campaign.
#[must_use]
pub fn from_env() -> Option<CancelToken> {
    let raw = std::env::var("FASTMON_DEADLINE_SECS").ok()?;
    let raw = raw.trim();
    if raw.is_empty() {
        return None;
    }
    match raw.parse::<f64>() {
        Ok(secs) if secs >= 0.0 && secs.is_finite() => {
            Some(CancelToken::with_deadline(Duration::from_secs_f64(secs)))
        }
        _ => {
            eprintln!("warning: ignoring invalid FASTMON_DEADLINE_SECS={raw:?}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_trips_checks_and_records_latency() {
        let token = CancelToken::new();
        assert!(token.check("analyze").is_ok());
        assert!(token.latency_since_request().is_none());
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled());
        assert_eq!(token.check("analyze"), Err(Cancelled { phase: "analyze" }));
        assert!(token.latency_since_request().is_some());
    }

    #[test]
    fn deadline_token_expires() {
        let token = CancelToken::with_deadline(Duration::from_secs(0));
        assert!(token.is_cancelled());
        assert_eq!(token.check("sta"), Err(Cancelled { phase: "sta" }));
        let roomy = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(roomy.check("sta").is_ok());
    }

    #[test]
    fn cancelled_error_displays_phase() {
        let err = Cancelled { phase: "ilp" };
        assert_eq!(err.to_string(), "run cancelled during ilp");
    }
}
