//! Log-bucketed latency histograms.
//!
//! A [`Histogram`] is a fixed-size array of relaxed atomic buckets laid
//! out like HdrHistogram's: values below 16 get exact unit buckets, and
//! every power-of-two range above that is split into 16 sub-buckets, so
//! the recorded→reported relative error is bounded by 1/16 (6.25%)
//! across the full `u64` range. Everything is lock-free and
//! const-constructible, which lets a [`HistogramSet`] live inside the
//! (const, sometimes static) [`crate::MetricsRegistry`].
//!
//! Values are unit-agnostic `u64`s; every recording site in the fastmon
//! tree records **nanoseconds** (see [`Histogram::record_duration`]), so
//! quantiles published in JSON snapshots are nanoseconds too.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two range splits into
/// `1 << SUB_BITS` buckets.
const SUB_BITS: u32 = 4;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Number of power-of-two groups above the exact range: values with their
/// most-significant bit in positions `SUB_BITS..=63`.
const GROUPS: usize = (64 - SUB_BITS as usize) + 1;
/// Total bucket count: one exact group of `SUB_COUNT` unit buckets plus
/// `GROUPS - 1` log groups of `SUB_COUNT` sub-buckets each.
pub const BUCKETS: usize = GROUPS * SUB_COUNT as usize;

/// Index of the bucket holding `v`.
#[inline]
#[must_use]
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let group = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB_COUNT - 1)) as usize;
    group * SUB_COUNT as usize + sub
}

/// Largest value mapping into bucket `idx` (the value reported for any
/// sample that landed there — quantiles never under-report).
#[inline]
#[must_use]
fn bucket_upper(idx: usize) -> u64 {
    let group = idx / SUB_COUNT as usize;
    let sub = (idx % SUB_COUNT as usize) as u64;
    if group == 0 {
        return sub;
    }
    let shift = (group - 1) as u32;
    // Lowest value in the bucket plus the bucket width minus one.
    ((SUB_COUNT + sub) << shift) + ((1u64 << shift) - 1)
}

/// A lock-free log-bucketed histogram of `u64` samples.
///
/// ~6.25% worst-case quantile error, `O(1)` record (one bucket
/// `fetch_add` plus count/sum/max updates, all relaxed), mergeable, and
/// const-constructible so it can sit inside static registries.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let q = self.quantiles();
        f.debug_struct("Histogram")
            .field("count", &q.count)
            .field("p50", &q.p50)
            .field("p99", &q.p99)
            .field("max", &q.max)
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantiles {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values (wrapping on overflow).
    pub sum: u64,
    /// Median (bucket upper bound, ≤6.25% above the true value).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum recorded value.
    pub max: u64,
}

impl Histogram {
    /// A fresh empty histogram (const so sets can live in statics).
    #[must_use]
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a wall-clock duration in nanoseconds (saturating).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Adds every sample of `other` into `self` (bucket-wise; the merged
    /// max stays exact).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Zeroes the histogram.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// The value at quantile `q` (clamped to `[0, 1]`): the upper bound
    /// of the first bucket whose cumulative count reaches `q * count`.
    /// `q = 1.0` returns the exact recorded maximum; an empty histogram
    /// returns 0 for every quantile.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max();
        }
        // ceil(q * total), at least 1: the rank of the sample we want.
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b.load(Ordering::Relaxed));
            if seen >= rank {
                // Never report above the true max (the top bucket's upper
                // bound can overshoot it).
                return bucket_upper(idx).min(self.max());
            }
        }
        self.max()
    }

    /// A point-in-time p50/p90/p99/max summary.
    #[must_use]
    pub fn quantiles(&self) -> Quantiles {
        Quantiles {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }

    /// Summary as a single-line JSON object
    /// (`{"count":..,"sum":..,"p50":..,"p90":..,"p99":..,"max":..}`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let q = self.quantiles();
        format!(
            "{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            q.count, q.sum, q.p50, q.p90, q.p99, q.max
        )
    }

    /// Raw non-empty buckets as `(upper_bound, count)` pairs, for tests
    /// and debugging.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(idx, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_upper(idx), n))
            })
            .collect()
    }
}

macro_rules! histogram_set {
    ($(#[$meta:meta])* $name:ident { $($(#[$fmeta:meta])* $field:ident),+ $(,)? }) => {
        $(#[$meta])*
        #[derive(Debug)]
        pub struct $name {
            $($(#[$fmeta])* pub $field: Histogram,)+
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }

        impl $name {
            /// A fresh all-empty set.
            #[must_use]
            pub const fn new() -> Self {
                $name { $($field: Histogram::new(),)+ }
            }

            /// Zeroes every histogram in the set.
            pub fn reset(&self) {
                $(self.$field.reset();)+
            }

            /// Adds every histogram of `other` into `self`.
            pub fn merge_from(&self, other: &$name) {
                $(self.$field.merge_from(&other.$field);)+
            }

            /// `(name, histogram)` pairs in declaration order.
            #[must_use]
            pub fn entries(&self) -> Vec<(&'static str, &Histogram)> {
                vec![$((stringify!($field), &self.$field),)+]
            }

            /// All summaries as a single-line JSON object keyed by name.
            #[must_use]
            pub fn to_json(&self) -> String {
                let mut s = String::from("{");
                for (i, (name, h)) in self.entries().iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push('"');
                    s.push_str(name);
                    s.push_str("\":");
                    s.push_str(&h.to_json());
                }
                s.push('}');
                s
            }
        }
    };
}

histogram_set! {
    /// The latency distributions tracked by every [`crate::MetricsRegistry`].
    /// All values are nanoseconds.
    HistogramSet {
        /// Job time spent queued before a worker picked it up.
        queue_wait,
        /// End-to-end job execution time (prepare through land).
        job_run,
        /// Per-band campaign simulation time.
        band,
        /// Checkpoint save latency (tmp write + rename).
        checkpoint_save,
        /// Checkpoint load latency (including misses).
        checkpoint_load,
        /// Protocol request line parse time.
        proto_parse,
        /// Protocol request handle time (dispatch to response written).
        proto_handle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_16_and_bounded_above() {
        // Exact unit buckets below SUB_COUNT.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
        // Above: the bucket upper bound is >= v and within 1/16 relative.
        for &v in &[
            16u64,
            17,
            31,
            32,
            33,
            100,
            1_000,
            65_535,
            65_536,
            1 << 40,
            (1 << 40) + 12345,
            u64::MAX,
        ] {
            let upper = bucket_upper(bucket_index(v));
            assert!(upper >= v, "upper {upper} < v {v}");
            // Worst case error bound: width of the bucket.
            assert!(
                upper - v <= v / 16,
                "bucket error too large for {v}: upper {upper}"
            );
        }
        // Indices are monotone in v.
        let mut last = 0usize;
        for shift in 0..60 {
            let v = 3u64 << shift;
            let idx = bucket_index(v);
            assert!(idx >= last);
            last = idx;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_never_under_report_and_p100_is_exact() {
        let h = Histogram::new();
        for v in [100u64, 200, 300, 400, 500, 600, 700, 800, 900, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 5500);
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.max(), 1000);
        // p50 covers the 5th sample (500): must be >= 500 and within a
        // bucket width.
        let p50 = h.quantile(0.5);
        assert!((500..=531).contains(&p50), "p50 {p50}");
        let p90 = h.quantile(0.9);
        assert!((900..=959).contains(&p90), "p90 {p90}");
    }

    #[test]
    fn quantile_monotonicity() {
        let h = Histogram::new();
        let mut x = 0x243f_6a88_85a3_08d3u64; // xorshift seed
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 1_000_000);
        }
        let mut last = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q}) = {v} < previous {last}");
            last = v;
        }
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn merge_is_associative_and_count_preserving() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[1, 5, 900, 10_000]);
        let b = mk(&[17, 17, 17, 1 << 30]);
        let c = mk(&[0, u64::MAX]);

        // (a ⊕ b) ⊕ c
        let left = Histogram::new();
        left.merge_from(&a);
        left.merge_from(&b);
        let left2 = Histogram::new();
        left2.merge_from(&left);
        left2.merge_from(&c);

        // a ⊕ (b ⊕ c)
        let right_inner = Histogram::new();
        right_inner.merge_from(&b);
        right_inner.merge_from(&c);
        let right = Histogram::new();
        right.merge_from(&a);
        right.merge_from(&right_inner);

        assert_eq!(left2.nonzero_buckets(), right.nonzero_buckets());
        assert_eq!(left2.count(), 10);
        assert_eq!(left2.count(), right.count());
        assert_eq!(left2.sum(), right.sum());
        assert_eq!(left2.max(), right.max());
        assert_eq!(left2.quantiles(), right.quantiles());
    }

    #[test]
    fn concurrent_records_preserve_totals() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads = 8u64;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let n = threads * per_thread;
        assert_eq!(h.count(), n);
        // Sum of 0..n.
        assert_eq!(h.sum(), n * (n - 1) / 2);
        assert_eq!(h.max(), n - 1);
        let bucket_total: u64 = h.nonzero_buckets().iter().map(|&(_, c)| c).sum();
        assert_eq!(bucket_total, n);
    }

    #[test]
    fn json_snapshot_parses_and_reset_zeroes() {
        let h = Histogram::new();
        h.record(42);
        h.record(4242);
        let v = crate::json::parse(&h.to_json()).unwrap();
        assert_eq!(v.get("count").and_then(crate::json::Value::as_u64), Some(2));
        assert_eq!(
            v.get("max").and_then(crate::json::Value::as_u64),
            Some(4242)
        );
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.nonzero_buckets(), Vec::new());
    }

    #[test]
    fn histogram_set_json_has_every_section() {
        let set = HistogramSet::new();
        set.queue_wait.record(10);
        set.band.record_duration(Duration::from_micros(3));
        let v = crate::json::parse(&set.to_json()).unwrap();
        for key in [
            "queue_wait",
            "job_run",
            "band",
            "checkpoint_save",
            "checkpoint_load",
            "proto_parse",
            "proto_handle",
        ] {
            assert!(v.get(key).is_some(), "missing {key}");
        }
        assert_eq!(
            v.get("band")
                .and_then(|b| b.get("max"))
                .and_then(crate::json::Value::as_u64),
            Some(3000)
        );
    }
}
