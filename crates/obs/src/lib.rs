//! # fastmon-obs — in-tree observability for the HDF test flow
//!
//! A zero-dependency tracing and metrics layer shared by every fastmon
//! crate. Three pieces:
//!
//! * **Spans** ([`span!`], [`span`], [`span_with`]): hierarchical phase
//!   markers with monotonic timing, recorded to a per-thread buffer and
//!   drained into a per-run JSONL event log (`events.jsonl`). Tracing is
//!   env-gated: `FASTMON_TRACE=1` enables the event log,
//!   `FASTMON_TRACE_DIR` picks the output directory (default `.`). When
//!   disabled, a span costs one relaxed atomic load and a branch.
//! * **Scoped metrics** ([`MetricsRegistry`]): a campaign-owned set of
//!   relaxed atomic counters covering fault simulation, ATPG, STA, ILP
//!   scheduling and checkpoint I/O. Each campaign owns its registry, so
//!   two campaigns running concurrently in one process report disjoint,
//!   correctly-attributed numbers (unlike the old process-wide
//!   `fastmon_sim::stats` globals). Each registry also carries a
//!   [`HistogramSet`] of log-bucketed latency [`Histogram`]s (queue
//!   wait, job run, band duration, checkpoint save/load, protocol
//!   parse/handle) with lock-free `record`/`merge`/`quantile`.
//! * **Profiles** ([`profile`]): whenever tracing (or profile-only mode,
//!   `FASTMON_PROFILE=1` / `FASTMON_PROFILE_OUT=<path>`) is active, span
//!   enters/exits also feed a per-phase self-time aggregate and a
//!   flamegraph-style collapsed-stack table, rendered post-run by
//!   `perf_snapshot` and embedded into `RUN_MANIFEST.json`.
//!
//! The JSONL event schema is versioned (see [`TRACE_SCHEMA_VERSION`]) the
//! same way the `FMCK` checkpoint format is; `crates/bench`'s
//! `check_events` bin validates emitted logs against it.
//!
//! Two robustness primitives live here as well, because they share the
//! same "one relaxed load when disabled" gating discipline:
//!
//! * **Failpoints** ([`failpoints`]): named, deterministically-scheduled
//!   injection sites (`FASTMON_FAILPOINTS`) used by the chaos suite to
//!   reach recovery paths on demand.
//! * **Cancellation** ([`cancel`]): a cooperative [`CancelToken`] with an
//!   optional deadline (`FASTMON_DEADLINE_SECS`) checked at phase/band
//!   boundaries for graceful early shutdown.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cancel;
pub mod events;
pub mod failpoints;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use cancel::{CancelToken, Cancelled};
pub use events::{Record, StreamSink};
pub use failpoints::{InjectedFailure, SpecError, SpecErrorKind};
pub use hist::{Histogram, HistogramSet, Quantiles};
pub use metrics::{
    AtpgMetrics, CheckpointMetrics, Counter, DaemonMetrics, IlpMetrics, MetricsRegistry,
    RobustnessMetrics, ShardsupMetrics, SimMetrics, StaMetrics,
};
pub use trace::{
    emit_chain, emit_counters, enabled, finish, flush, force_enable, jsonl_enabled, run_id, span,
    span_with, Span, TraceMode, TRACE_SCHEMA_VERSION,
};

/// Opens a span that closes when the returned guard is dropped.
///
/// ```
/// {
///     let _s = fastmon_obs::span!("atpg");
///     // ... phase work ...
/// } // span exits here
/// let _b = fastmon_obs::span!("band", 3);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $arg:expr) => {
        $crate::span_with($name, ($arg) as u64)
    };
}
