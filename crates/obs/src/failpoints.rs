//! Deterministic failpoint injection.
//!
//! A failpoint is a *named site* in library code where a failure can be
//! injected on demand — the in-tree, zero-dependency analogue of TiKV's
//! `fail-rs`. Sites are compiled in unconditionally but cost a **single
//! relaxed atomic load** when no schedule is configured (the same gating
//! pattern as [`crate::trace`]; the `obs_overhead` bench guards it).
//!
//! # Configuration grammar
//!
//! Schedules come from `FASTMON_FAILPOINTS` (armed eagerly via
//! [`arm_from_env`], or resolved lazily on first [`fire`] like
//! `FASTMON_TRACE`) or programmatically via [`configure`]. Parsing is
//! strict: empty entries (a trailing `;`), empty site names, unknown
//! actions and bad triggers are typed [`SpecError`]s, never skipped:
//!
//! ```text
//! FASTMON_FAILPOINTS="site=action@trigger[;site=action@trigger...]"
//! ```
//!
//! * `site` — a registered site name (see [`SITES`]); unknown names are
//!   accepted and simply never consulted.
//! * `action` — what happens when the trigger matches:
//!   * `err` (alias `io`): [`fire`] returns `Err(InjectedFailure)`, which
//!     call sites map into their own typed error (`CheckpointError::Io`,
//!     `FlowError::Injected`, ...).
//!   * `panic`: the site panics with a recognizable message — used to
//!     exercise `catch_unwind` containment in worker pools.
//! * `trigger` — when it happens, evaluated against a per-site hit
//!   counter (first hit is 1):
//!   * `N` — fires exactly once, on the `N`-th hit (`@0` ≙ `@1`).
//!   * `every:N` — fires on every `N`-th hit (`N ≥ 1`).
//!   * `P%seedS` — fires on each hit independently with probability `P`
//!     percent (float), decided by a deterministic hash of `(S, hit)` —
//!     the same seed and hit sequence always fires identically.
//!
//! Example: `checkpoint_write=io@2;ilp_node=panic@0.01%seed7`.
//!
//! # Determinism
//!
//! Per-site hit counters are process-wide atomics; with a single-threaded
//! or per-site-serial caller the fire pattern is exactly reproducible.
//! Probabilistic triggers never consult a global RNG.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, PoisonError};

/// Every injection site registered across the workspace, for docs and the
/// chaos suite. Firing an unlisted name is allowed (sites are matched by
/// string), but the chaos-under-failpoints suite iterates this list.
pub const SITES: &[&str] = &[
    "checkpoint_write",
    "checkpoint_rename",
    "checkpoint_load",
    "campaign_band",
    "sim_worker",
    "parallel_worker",
    "ilp_node",
    "atpg_grade",
    "atpg_podem",
];

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static FIRED: AtomicU64 = AtomicU64::new(0);
static TABLE: Mutex<Option<Table>> = Mutex::new(None);

type Table = HashMap<String, Site>;

/// The error returned by [`fire`] when an `err`/`io` action triggers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFailure {
    /// The site that fired.
    pub site: &'static str,
}

impl fmt::Display for InjectedFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected failure at failpoint '{}'", self.site)
    }
}

impl Error for InjectedFailure {}

/// A malformed failpoint schedule, surfaced as a typed configuration
/// error at arm time ([`configure`] / [`arm_from_env`]) instead of being
/// silently ignored.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// The offending entry (trimmed), or the whole spec for
    /// schedule-level errors.
    pub entry: String,
    /// What was wrong with it.
    pub kind: SpecErrorKind,
}

/// The ways a `FASTMON_FAILPOINTS` schedule can be malformed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpecErrorKind {
    /// The spec contained no entries at all.
    EmptySchedule,
    /// An empty entry between/after separators (`a=err@1;;` or a
    /// trailing `;`).
    EmptyEntry,
    /// The site name before `=` was empty.
    EmptySite,
    /// No `=` separating site from rule.
    MissingEquals,
    /// No `@` separating action from trigger.
    MissingAt,
    /// An action other than `err`/`io`/`panic`.
    UnknownAction {
        /// The unrecognized action text.
        action: String,
    },
    /// The trigger clause did not parse.
    BadTrigger {
        /// Why the trigger was rejected.
        reason: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let entry = &self.entry;
        match &self.kind {
            SpecErrorKind::EmptySchedule => write!(f, "empty failpoint schedule"),
            SpecErrorKind::EmptyEntry => {
                write!(f, "empty entry in '{entry}' (trailing or doubled ';')")
            }
            SpecErrorKind::EmptySite => write!(f, "'{entry}': empty site name before '='"),
            SpecErrorKind::MissingEquals => write!(f, "'{entry}': expected site=action@trigger"),
            SpecErrorKind::MissingAt => {
                write!(f, "'{entry}': expected action@trigger after '='")
            }
            SpecErrorKind::UnknownAction { action } => {
                write!(f, "'{entry}': unknown action '{action}' (err|io|panic)")
            }
            SpecErrorKind::BadTrigger { reason } => write!(f, "'{entry}': {reason}"),
        }
    }
}

impl Error for SpecError {}

/// What a matched trigger does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Return `Err(InjectedFailure)` from [`fire`].
    Err,
    /// Panic with a recognizable message.
    Panic,
}

#[derive(Debug)]
enum Trigger {
    /// Fires exactly once, on the n-th hit (1-based).
    Nth(u64),
    /// Fires on every n-th hit.
    Every(u64),
    /// Fires independently per hit with `percent` probability, decided by
    /// a deterministic hash of `(seed, hit)`.
    Percent { percent: f64, seed: u64 },
}

#[derive(Debug)]
struct Site {
    action: Action,
    trigger: Trigger,
    hits: AtomicU64,
}

impl Site {
    fn matches(&self, hit: u64) -> bool {
        match self.trigger {
            Trigger::Nth(n) => hit == n.max(1),
            Trigger::Every(n) => hit.is_multiple_of(n.max(1)),
            Trigger::Percent { percent, seed } => {
                // splitmix64 over (seed, hit): deterministic, well-mixed,
                // no global RNG state.
                let mut z = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(hit.wrapping_mul(0xbf58_476d_1ce4_e5b9));
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
                unit < percent / 100.0
            }
        }
    }
}

#[inline]
fn state() -> u8 {
    let s = STATE.load(Ordering::Relaxed);
    if s == STATE_UNINIT {
        return init_state_from_env();
    }
    s
}

#[cold]
fn init_state_from_env() -> u8 {
    let (s, table) = match std::env::var("FASTMON_FAILPOINTS") {
        Ok(spec) if !spec.trim().is_empty() => match parse_spec(&spec) {
            Ok(table) => (STATE_ON, Some(table)),
            Err(msg) => {
                // fire() has no error channel for configuration problems;
                // binaries that want a hard failure arm eagerly via
                // arm_from_env() before the first fire().
                eprintln!("warning: ignoring invalid FASTMON_FAILPOINTS: {msg}");
                (STATE_OFF, None)
            }
        },
        _ => (STATE_OFF, None),
    };
    let mut guard = TABLE.lock().unwrap_or_else(PoisonError::into_inner);
    // A concurrent configure() wins; otherwise publish the env answer.
    match STATE.compare_exchange(STATE_UNINIT, s, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => {
            *guard = table;
            s
        }
        Err(current) => current,
    }
}

fn parse_spec(spec: &str) -> Result<Table, SpecError> {
    let err = |entry: &str, kind: SpecErrorKind| SpecError {
        entry: entry.to_string(),
        kind,
    };
    if spec.trim().is_empty() {
        return Err(err(spec.trim(), SpecErrorKind::EmptySchedule));
    }
    let mut table = Table::new();
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            // A trailing or doubled ';' is a typo that used to be silently
            // skipped; make it loud so chaos schedules never half-arm.
            return Err(err(spec.trim(), SpecErrorKind::EmptyEntry));
        }
        let (site, rule) = entry
            .split_once('=')
            .ok_or_else(|| err(entry, SpecErrorKind::MissingEquals))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(err(entry, SpecErrorKind::EmptySite));
        }
        let (action, trigger) = rule
            .split_once('@')
            .ok_or_else(|| err(entry, SpecErrorKind::MissingAt))?;
        let action = match action.trim() {
            "err" | "io" => Action::Err,
            "panic" => Action::Panic,
            other => {
                return Err(err(
                    entry,
                    SpecErrorKind::UnknownAction {
                        action: other.to_string(),
                    },
                ))
            }
        };
        let trigger = parse_trigger(trigger.trim())
            .map_err(|reason| err(entry, SpecErrorKind::BadTrigger { reason }))?;
        table.insert(
            site.to_string(),
            Site {
                action,
                trigger,
                hits: AtomicU64::new(0),
            },
        );
    }
    Ok(table)
}

fn parse_trigger(t: &str) -> Result<Trigger, String> {
    if let Some(n) = t.strip_prefix("every:") {
        let n: u64 = n.parse().map_err(|_| format!("bad every count '{n}'"))?;
        if n == 0 {
            return Err("every:0 would never fire".to_string());
        }
        return Ok(Trigger::Every(n));
    }
    if let Some((p, seed)) = t.split_once('%') {
        let percent: f64 = p.parse().map_err(|_| format!("bad percentage '{p}'"))?;
        if !(0.0..=100.0).contains(&percent) {
            return Err(format!("percentage {percent} outside 0..=100"));
        }
        let seed = seed.strip_prefix("seed").unwrap_or(seed);
        let seed: u64 = seed.parse().map_err(|_| format!("bad seed '{seed}'"))?;
        return Ok(Trigger::Percent { percent, seed });
    }
    let n: u64 = t.parse().map_err(|_| format!("bad hit index '{t}'"))?;
    Ok(Trigger::Nth(n))
}

/// Consults the failpoint table for `site` and fails if its trigger
/// matches the current hit.
///
/// With no schedule configured this is one relaxed atomic load and a
/// predictable branch. With a schedule, a matched `err`/`io` action
/// returns [`InjectedFailure`] for the caller to map into its own typed
/// error; a matched `panic` action panics (callers are expected to be
/// under `catch_unwind` containment or to let the typed-panic surface).
///
/// # Errors
///
/// Returns [`InjectedFailure`] when an `err`-action trigger matches.
///
/// # Panics
///
/// Panics (deliberately) when a `panic`-action trigger matches.
#[inline]
pub fn fire(site: &'static str) -> Result<(), InjectedFailure> {
    if state() != STATE_ON {
        return Ok(());
    }
    fire_slow(site)
}

#[cold]
fn fire_slow(site: &'static str) -> Result<(), InjectedFailure> {
    let action = {
        let guard = TABLE.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(entry) = guard.as_ref().and_then(|t| t.get(site)) else {
            return Ok(());
        };
        let hit = entry.hits.fetch_add(1, Ordering::Relaxed) + 1;
        if !entry.matches(hit) {
            return Ok(());
        }
        entry.action
    };
    FIRED.fetch_add(1, Ordering::Relaxed);
    match action {
        Action::Err => Err(InjectedFailure { site }),
        Action::Panic => panic!("injected panic at failpoint '{site}'"),
    }
}

/// Installs a failpoint schedule programmatically, overriding (and
/// pre-empting) the environment. Passing an empty spec disables all
/// failpoints, like [`clear`]. Per-site hit counters start at zero.
///
/// Intended for tests; production runs use `FASTMON_FAILPOINTS` armed
/// eagerly via [`arm_from_env`].
///
/// # Errors
///
/// Returns a typed [`SpecError`] describing the first malformed entry;
/// the previous schedule is left untouched.
pub fn configure(spec: &str) -> Result<(), SpecError> {
    if spec.trim().is_empty() {
        clear();
        return Ok(());
    }
    let table = parse_spec(spec)?;
    let mut guard = TABLE.lock().unwrap_or_else(PoisonError::into_inner);
    *guard = Some(table);
    STATE.store(STATE_ON, Ordering::Relaxed);
    Ok(())
}

/// Eagerly arms failpoints from `FASTMON_FAILPOINTS`, surfacing a
/// malformed spec as a typed error instead of the lazy first-[`fire`]
/// path's warn-and-disable fallback. Binaries call this at startup so a
/// chaos schedule with a typo aborts the run rather than silently
/// testing nothing.
///
/// Returns `Ok(true)` when a schedule was installed, `Ok(false)` when
/// the variable is unset or blank (failpoints disabled).
///
/// # Errors
///
/// Returns the [`SpecError`] for the first malformed entry; failpoints
/// are left disabled.
pub fn arm_from_env() -> Result<bool, SpecError> {
    match std::env::var("FASTMON_FAILPOINTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            configure(&spec)?;
            Ok(true)
        }
        _ => {
            clear();
            Ok(false)
        }
    }
}

/// Disables all failpoints and drops the schedule. The process-wide
/// [`fired_count`] is preserved.
pub fn clear() {
    let mut guard = TABLE.lock().unwrap_or_else(PoisonError::into_inner);
    *guard = None;
    STATE.store(STATE_OFF, Ordering::Relaxed);
}

/// Process-wide count of triggers that have fired (all sites, all
/// schedules since process start).
#[must_use]
pub fn fired_count() -> u64 {
    FIRED.load(Ordering::Relaxed)
}

/// True when a non-empty schedule is installed.
#[must_use]
pub fn active() -> bool {
    state() == STATE_ON
}

/// The sites named by the currently-installed schedule (empty when
/// disabled). Sorted for stable output.
#[must_use]
pub fn configured_sites() -> Vec<String> {
    if state() != STATE_ON {
        return Vec::new();
    }
    let guard = TABLE.lock().unwrap_or_else(PoisonError::into_inner);
    let mut sites: Vec<String> = guard
        .as_ref()
        .map(|t| t.keys().cloned().collect())
        .unwrap_or_default();
    sites.sort();
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    // Failpoint state is process-wide, so every test that installs a
    // schedule runs inside this single serialized test body.
    #[test]
    fn scripted_schedules_fire_deterministically() {
        // Nth-hit: fires exactly once, on the second hit.
        configure("site_a=err@2").unwrap();
        assert!(fire("site_a").is_ok());
        assert_eq!(fire("site_a"), Err(InjectedFailure { site: "site_a" }));
        assert!(fire("site_a").is_ok());
        assert!(fire("unconfigured").is_ok());

        // every:N fires periodically.
        configure("site_b=io@every:3").unwrap();
        let fired: Vec<bool> = (0..9).map(|_| fire("site_b").is_err()).collect();
        assert_eq!(
            fired,
            [false, false, true, false, false, true, false, false, true]
        );

        // @0 is treated as @1 (fire on first hit).
        configure("site_z=err@0").unwrap();
        assert!(fire("site_z").is_err());
        assert!(fire("site_z").is_ok());

        // Percent triggers are deterministic per (seed, hit) and roughly
        // calibrated.
        configure("site_c=err@40%seed7").unwrap();
        let run1: Vec<bool> = (0..200).map(|_| fire("site_c").is_err()).collect();
        configure("site_c=err@40%seed7").unwrap();
        let run2: Vec<bool> = (0..200).map(|_| fire("site_c").is_err()).collect();
        assert_eq!(run1, run2, "same seed must fire identically");
        let hits = run1.iter().filter(|&&f| f).count();
        assert!((40..=120).contains(&hits), "40% of 200 ≈ 80, got {hits}");
        configure("site_c=err@40%seed8").unwrap();
        let run3: Vec<bool> = (0..200).map(|_| fire("site_c").is_err()).collect();
        assert_ne!(run1, run3, "different seeds should differ");

        // 0% never fires, 100% always fires.
        configure("site_d=err@0%seed1;site_e=err@100%seed1").unwrap();
        assert!((0..50).all(|_| fire("site_d").is_ok()));
        assert!((0..50).all(|_| fire("site_e").is_err()));

        // Panic actions panic with a recognizable message.
        configure("site_p=panic@1").unwrap();
        let caught = std::panic::catch_unwind(|| fire("site_p"));
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("injected panic at failpoint 'site_p'"));

        // Multi-entry schedules configure both sites.
        configure("checkpoint_write=io@2;ilp_node=panic@0.01%seed7").unwrap();
        assert_eq!(
            configured_sites(),
            vec!["checkpoint_write".to_string(), "ilp_node".to_string()]
        );
        assert!(active());

        // A rejected configure() leaves the previous schedule untouched.
        configure("keepme=err@1").unwrap();
        configure("site=badaction@x").unwrap_err();
        assert_eq!(configured_sites(), vec!["keepme".to_string()]);

        // arm_from_env() surfaces malformed env specs as typed errors
        // (env mutation is safe inside this single serialized body).
        std::env::set_var("FASTMON_FAILPOINTS", "site=badaction@x;");
        let err = arm_from_env().unwrap_err();
        assert_eq!(
            err.kind,
            SpecErrorKind::UnknownAction {
                action: "badaction".to_string()
            }
        );
        assert_eq!(configured_sites(), vec!["keepme".to_string()]);
        std::env::set_var("FASTMON_FAILPOINTS", "arm_site=err@1");
        assert_eq!(arm_from_env(), Ok(true));
        assert_eq!(configured_sites(), vec!["arm_site".to_string()]);
        std::env::remove_var("FASTMON_FAILPOINTS");
        assert_eq!(arm_from_env(), Ok(false));

        // clear() disables everything.
        clear();
        assert!(!active());
        assert!(configured_sites().is_empty());
        assert!(fire("site_a").is_ok());
        assert!(fired_count() > 0);
    }

    #[test]
    fn malformed_specs_are_rejected_with_typed_errors() {
        use SpecErrorKind as K;
        let kind = |spec: &str| {
            parse_spec(spec)
                .expect_err(&format!("spec {spec:?} should be rejected"))
                .kind
        };
        assert_eq!(kind(""), K::EmptySchedule);
        assert_eq!(kind("   "), K::EmptySchedule);
        assert_eq!(kind("no_equals"), K::MissingEquals);
        assert_eq!(kind("site=errat2"), K::MissingAt);
        assert_eq!(
            kind("site=badaction@x"),
            K::UnknownAction {
                action: "badaction".to_string()
            }
        );
        assert_eq!(
            kind("site=frob@1"),
            K::UnknownAction {
                action: "frob".to_string()
            }
        );
        // Empty site name.
        assert_eq!(kind("=err@1"), K::EmptySite);
        assert_eq!(kind("  =err@1"), K::EmptySite);
        // Trailing / doubled ';' used to be silently skipped.
        assert_eq!(kind("site=err@1;"), K::EmptyEntry);
        assert_eq!(kind("a=err@1;;b=err@2"), K::EmptyEntry);
        assert_eq!(kind("  ;  ; "), K::EmptyEntry);
        // Trigger-clause problems carry the reason through.
        assert!(matches!(kind("site=err@every:0"), K::BadTrigger { .. }));
        assert!(matches!(kind("site=err@150%seed1"), K::BadTrigger { .. }));
        assert!(matches!(kind("site=err@x"), K::BadTrigger { .. }));
        assert!(matches!(kind("site=err@10%seedx"), K::BadTrigger { .. }));

        // Errors render as human-readable messages naming the entry.
        let err = parse_spec("site=badaction@x").unwrap_err();
        assert!(err.to_string().contains("badaction"));
        assert_eq!(err.entry, "site=badaction@x");
    }
}
