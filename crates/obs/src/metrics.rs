//! Campaign-scoped metric counters.
//!
//! A [`MetricsRegistry`] is owned by whoever runs a campaign (one
//! `HdfTestFlow` owns one registry) and handed down by shared reference
//! through the flow, the analysis and the work-stealing pool. Counters use
//! relaxed ordering and are designed for batch flushes (the fault-sim hot
//! loop accumulates per-cone deltas locally and publishes them once per
//! cone), so the bookkeeping stays invisible in profiles.
//!
//! Because every campaign owns its registry, concurrent campaigns in one
//! process attribute their work correctly — the process-wide counters in
//! `fastmon_sim::stats` (now deprecated shims over a global registry) could
//! not distinguish them.

use std::sync::atomic::{AtomicU64, Ordering};

/// A relaxed-ordering monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter (const so registries can live in statics).
    #[must_use]
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one (relaxed).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (relaxed).
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (relaxed).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

macro_rules! metric_section {
    ($(#[$meta:meta])* $name:ident { $($(#[$fmeta:meta])* $field:ident),+ $(,)? }) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        pub struct $name {
            $($(#[$fmeta])* pub $field: Counter,)+
        }

        impl $name {
            /// A fresh all-zero section.
            #[must_use]
            pub const fn new() -> Self {
                $name { $($field: Counter::new(),)+ }
            }

            /// Zeroes every counter in the section.
            pub fn reset(&self) {
                $(self.$field.reset();)+
            }

            /// `(name, value)` pairs in declaration order.
            #[must_use]
            pub fn entries(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($field), self.$field.get()),)+]
            }

            /// Adds every counter of `other` into `self`.
            pub fn absorb(&self, other: &Self) {
                $(self.$field.add(other.$field.get());)+
            }
        }
    };
}

metric_section! {
    /// Fault-simulation campaign counters (formerly `fastmon_sim::stats`).
    SimMetrics {
        /// Planned cone simulations whose fault was active at its seed gate.
        cones_simulated,
        /// Planned cone simulations rejected because the fault was fully
        /// masked at its own gate (seed waveform unchanged).
        cones_masked,
        /// Cone gates actually re-evaluated.
        nodes_evaluated,
        /// Cone gates skipped because every fanin had already converged
        /// back to its fault-free waveform (including early-exit tail skips).
        nodes_converged,
        /// Cone gates dropped at plan-build time because they cannot reach
        /// any observation point.
        nodes_pruned_unobserved,
        /// Cone propagation plans built (one per distinct fault gate) —
        /// proves the plan/pruning wiring actually ran even when
        /// `nodes_pruned_unobserved` is legitimately 0 on fully observable
        /// netlists.
        cone_plans_built,
        /// Waveform transition buffers allocated fresh in the hot loop.
        waveform_allocs,
        /// Waveform transition buffers recycled from the scratch pool.
        waveform_reuses,
        /// Word-parallel screen traversals (one per 64-fault group per
        /// pattern).
        screen_walks,
        /// Union-cone gates visited by the word-parallel screen.
        screen_nodes_visited,
        /// (fault, pattern) pairs discarded by the screen without an exact
        /// cone walk (not activated, blocked at a side input, or provably
        /// unable to reach an observation point).
        faults_screened_out,
        /// Structural fault-equivalence classes of the campaign (the
        /// representatives actually simulated).
        fault_classes,
        /// Faults never simulated because a class representative's results
        /// were fanned back to them verbatim.
        faults_collapsed,
    }
}

metric_section! {
    /// ATPG (PODEM + random phase + bit-parallel grading) counters.
    AtpgMetrics {
        /// Deterministic PODEM invocations.
        podem_calls,
        /// PODEM decision backtracks across all invocations.
        podem_backtracks,
        /// PODEM invocations aborted at the backtrack limit.
        podem_aborts,
        /// PODEM invocations answered `Untestable` straight from the
        /// static-learning preamble (no search).
        podem_learned_untestable,
        /// Sources pre-assigned by learned implications before the search
        /// started (necessary assignments).
        podem_necessity_assignments,
        /// Faults proven untestable.
        faults_untestable,
        /// Faults detected (random phase + PODEM).
        faults_detected,
        /// Patterns in the final (compacted, budget-capped) set.
        patterns_emitted,
        /// Fanout cones precomputed into the shared grading arena.
        cones_cached,
        /// Fanout-cone BFS traversals actually performed (arena builds +
        /// uncached fallback grades).
        cone_bfs,
        /// Cached grades that skipped a per-call cone BFS (each would have
        /// been one `fanout_cone` traversal before the arena existed).
        cone_bfs_avoided,
        /// Cone gate words evaluated while grading faulty machines.
        cone_nodes_evaluated,
        /// Grading scratch buffers allocated (once per worker, plus grows
        /// on cones longer than any seen before).
        grade_scratch_allocs,
        /// Grades served entirely from reusable scratch (zero heap
        /// allocations on this path).
        grade_scratch_reuses,
        /// Full fault × pattern detection-matrix simulations.
        matrix_builds,
        /// Matrix re-simulations avoided by re-packing existing rows
        /// (`DetectionMatrix::select_patterns`).
        matrix_rebuilds_avoided,
    }
}

metric_section! {
    /// Static timing analysis counters.
    StaMetrics {
        /// Completed STA runs (forward + backward pass).
        analyses,
        /// Nodes levelized/propagated across all runs.
        nodes_levelized,
    }
}

metric_section! {
    /// ILP / set-cover scheduling counters.
    IlpMetrics {
        /// Branch-and-bound solves attempted.
        solves,
        /// Branch-and-bound search nodes expanded.
        bb_nodes,
        /// Columns fixed by dominance/reduction preprocessing.
        bb_fixed_by_reduction,
        /// Subtrees cut by the lower-bound tests.
        bb_bounds_pruned,
        /// Solves that hit their deadline and returned the incumbent.
        deadline_hits,
        /// Solves answered by the greedy fallback instead of exact search.
        greedy_fallbacks,
    }
}

metric_section! {
    /// Campaign checkpoint I/O counters (latencies in nanoseconds).
    CheckpointMetrics {
        /// Checkpoint files written.
        saves,
        /// Total wall time spent writing checkpoints, in ns.
        save_ns,
        /// Checkpoint bytes written.
        save_bytes,
        /// Checkpoint load attempts (including misses).
        loads,
        /// Total wall time spent loading checkpoints, in ns.
        load_ns,
        /// Campaigns actually resumed from a checkpoint.
        resumes,
    }
}

metric_section! {
    /// Robustness events: failpoint injections, checkpoint retries,
    /// contained worker panics and cancellation latency. Zero in healthy
    /// runs; nonzero values mean a recovery path actually executed.
    RobustnessMetrics {
        /// Failpoint triggers that fired inside this campaign's scope.
        failpoints_fired,
        /// Checkpoint saves retried after a transient I/O error.
        checkpoint_retries,
        /// Milliseconds between a cancellation request (explicit or
        /// deadline) and the graceful stop that honoured it.
        cancel_latency_ms,
        /// Worker panics caught by `catch_unwind` and surfaced as typed
        /// errors instead of aborting the process.
        worker_panics_contained,
    }
}

metric_section! {
    /// `fastmond` job-lifecycle counters, reported under
    /// `robustness.daemon.*`. Owned by the daemon process (one registry
    /// per daemon, not per campaign) and absorbed into `perf_snapshot`'s
    /// robustness rollup alongside [`RobustnessMetrics`].
    DaemonMetrics {
        /// Jobs accepted onto the bounded queue.
        jobs_admitted,
        /// Jobs refused with a typed reject (queue full or draining).
        jobs_rejected,
        /// Jobs that resumed a campaign from an on-disk checkpoint.
        jobs_resumed,
        /// Jobs that ran to completion and landed results.
        jobs_completed,
        /// Jobs that ended with a typed error (still resumable when a
        /// checkpoint exists).
        jobs_failed,
        /// Jobs stopped by cancellation or deadline at a band boundary.
        jobs_cancelled,
        /// Graceful SIGTERM/SIGINT drains begun.
        drains,
        /// Worker panics contained per-job by `catch_unwind`.
        panics_contained,
    }
}

metric_section! {
    /// Multi-process shard-supervisor counters, reported under
    /// `robustness.shardsup.*`. Owned by whoever runs a supervised
    /// campaign (`perf_snapshot --shard-procs`, `fastmond` shard-procs
    /// jobs) and absorbed into the robustness rollup. Zero when shards
    /// run in-process.
    ShardsupMetrics {
        /// Shard worker processes spawned (first attempts and respawns).
        workers_spawned,
        /// Workers respawned after a crash, stall kill, or nonzero exit.
        respawns,
        /// Workers killed because no heartbeat arrived within the stall
        /// timeout.
        stalls_detected,
        /// Workers SIGTERMed by the RSS watchdog for exceeding
        /// `FASTMON_SHARD_RSS_BYTES`.
        rss_evictions,
        /// Evicted workers re-admitted after concurrency freed memory.
        readmissions,
        /// Last-shard stragglers killed and re-dispatched.
        stragglers_redispatched,
        /// Heartbeat/progress lines parsed from worker pipes.
        heartbeats_received,
        /// Shards that landed a valid result file.
        shards_completed,
    }
}

/// The campaign-owned collector handed through the whole flow.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Fault-simulation counters.
    pub sim: SimMetrics,
    /// ATPG counters.
    pub atpg: AtpgMetrics,
    /// STA counters.
    pub sta: StaMetrics,
    /// ILP scheduling counters.
    pub ilp: IlpMetrics,
    /// Checkpoint I/O counters.
    pub checkpoint: CheckpointMetrics,
    /// Robustness-event counters (injections, retries, contained panics).
    pub robustness: RobustnessMetrics,
    /// Daemon job-lifecycle counters (zero outside a `fastmond` process).
    pub daemon: DaemonMetrics,
    /// Shard-supervisor counters (zero when shards run in-process).
    pub shardsup: ShardsupMetrics,
    /// Latency distributions (nanoseconds): queue-wait, job run, band,
    /// checkpoint save/load, protocol parse/handle.
    pub latency: crate::hist::HistogramSet,
}

impl MetricsRegistry {
    /// A fresh all-zero registry.
    #[must_use]
    pub const fn new() -> Self {
        MetricsRegistry {
            sim: SimMetrics::new(),
            atpg: AtpgMetrics::new(),
            sta: StaMetrics::new(),
            ilp: IlpMetrics::new(),
            checkpoint: CheckpointMetrics::new(),
            robustness: RobustnessMetrics::new(),
            daemon: DaemonMetrics::new(),
            shardsup: ShardsupMetrics::new(),
            latency: crate::hist::HistogramSet::new(),
        }
    }

    /// Zeroes every counter and histogram.
    pub fn reset(&self) {
        self.sim.reset();
        self.atpg.reset();
        self.sta.reset();
        self.ilp.reset();
        self.checkpoint.reset();
        self.robustness.reset();
        self.daemon.reset();
        self.shardsup.reset();
        self.latency.reset();
    }

    /// Adds every counter and histogram sample of `other` into `self`.
    ///
    /// This is how per-job registries (one per `HdfTestFlow`) roll up
    /// into a long-lived daemon registry without losing attribution in
    /// the per-job copy.
    pub fn absorb(&self, other: &MetricsRegistry) {
        self.sim.absorb(&other.sim);
        self.atpg.absorb(&other.atpg);
        self.sta.absorb(&other.sta);
        self.ilp.absorb(&other.ilp);
        self.checkpoint.absorb(&other.checkpoint);
        self.robustness.absorb(&other.robustness);
        self.daemon.absorb(&other.daemon);
        self.shardsup.absorb(&other.shardsup);
        self.latency.merge_from(&other.latency);
    }

    /// All counters as dotted `(name, value)` pairs, e.g.
    /// `("sim.cones_simulated", 42)`.
    #[must_use]
    pub fn entries(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for (section, entries) in [
            ("sim", self.sim.entries()),
            ("atpg", self.atpg.entries()),
            ("sta", self.sta.entries()),
            ("ilp", self.ilp.entries()),
            ("checkpoint", self.checkpoint.entries()),
            ("robustness", self.robustness.entries()),
            ("robustness.daemon", self.daemon.entries()),
            ("robustness.shardsup", self.shardsup.entries()),
        ] {
            for (name, value) in entries {
                out.push((format!("{section}.{name}"), value));
            }
        }
        out
    }

    /// The counters as a single-line JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (i, (name, value)) in self.entries().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            s.push_str(name); // dotted ascii identifiers, no escaping needed
            s.push_str("\":");
            s.push_str(&value.to_string());
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let reg = MetricsRegistry::new();
        reg.sim.cones_simulated.add(3);
        reg.sim.cones_simulated.incr();
        reg.ilp.bb_nodes.add(7);
        assert_eq!(reg.sim.cones_simulated.get(), 4);
        assert_eq!(reg.ilp.bb_nodes.get(), 7);
        reg.reset();
        assert_eq!(reg.sim.cones_simulated.get(), 0);
        assert_eq!(reg.ilp.bb_nodes.get(), 0);
    }

    #[test]
    fn entries_are_dotted_and_cover_every_section() {
        let reg = MetricsRegistry::new();
        reg.checkpoint.saves.incr();
        let entries = reg.entries();
        for prefix in [
            "sim.",
            "atpg.",
            "sta.",
            "ilp.",
            "checkpoint.",
            "robustness.",
            "robustness.daemon.",
            "robustness.shardsup.",
        ] {
            assert!(
                entries.iter().any(|(n, _)| n.starts_with(prefix)),
                "missing section {prefix}"
            );
        }
        reg.daemon.jobs_admitted.add(2);
        assert!(reg
            .entries()
            .iter()
            .any(|(n, v)| n == "robustness.daemon.jobs_admitted" && *v == 2));
        let saves = entries
            .iter()
            .find(|(n, _)| n == "checkpoint.saves")
            .map(|&(_, v)| v);
        assert_eq!(saves, Some(1));
    }

    #[test]
    fn json_is_parseable_by_the_inhouse_parser() {
        let reg = MetricsRegistry::new();
        reg.sim.nodes_pruned_unobserved.add(11);
        let value = crate::json::parse(&reg.to_json()).unwrap();
        assert_eq!(
            value
                .get("sim.nodes_pruned_unobserved")
                .and_then(crate::json::Value::as_u64),
            Some(11)
        );
    }
}
