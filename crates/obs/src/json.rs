//! A minimal JSON parser, just big enough to validate and inspect the
//! hand-rolled JSON the workspace emits (`events.jsonl`, profile reports,
//! `RUN_MANIFEST.json`). No external dependencies, no serde: the build
//! environment is offline.
//!
//! Supported: objects, arrays, strings (with `\" \\ \/ \b \f \n \r \t`
//! and `\uXXXX` escapes), numbers (as `f64`), booleans, null. Duplicate
//! object keys keep the last value on lookup but are preserved in order.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object (last occurrence wins).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 1.8e19 => Some(*n as u64),
            _ => None,
        }
    }

    /// The fields of an object, in source order.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document; trailing garbage is an error.
///
/// # Errors
///
/// Returns a human-readable message with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid utf-8 in number at byte {start}"))?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_owned())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        *pos += 4;
                        // surrogate pairs are not needed by our own emitters;
                        // map lone surrogates to the replacement character
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape `\\{}`", *other as char)),
                }
            }
            Some(_) => {
                // copy one UTF-8 scalar verbatim
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid utf-8 at byte {pos}", pos = *pos))?;
                let ch = s.chars().next().unwrap_or('\u{fffd}');
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal (no surrounding
/// quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e1],"b":{"c":"x\ny","d":null,"e":true}}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(Value::as_arr).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("x\ny")
        );
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Value::Null));
        assert_eq!(
            v.get("a")
                .and_then(Value::as_arr)
                .and_then(|a| a[0].as_u64()),
            Some(1)
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{} x",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line1\nline2\t\"quoted\" \\ end\u{1}";
        let doc = format!("{{\"k\":\"{}\"}}", escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_str), Some(original));
    }
}
