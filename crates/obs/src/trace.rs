//! Span tracing: hierarchical phase markers with monotonic timing,
//! buffered per thread and drained into a per-run JSONL event log.
//!
//! # Modes
//!
//! The tracer has three modes, resolved once from the environment on first
//! use and cached in an atomic (so a disabled span costs one relaxed load
//! and a branch):
//!
//! * **Off** (default): spans are no-ops.
//! * **Profile** (`FASTMON_PROFILE=1` or `FASTMON_PROFILE_OUT=<path>`):
//!   spans feed the in-process [`crate::profile`] aggregate only.
//! * **Full** (`FASTMON_TRACE=1`): profile aggregation *plus* a JSONL
//!   event log written to `$FASTMON_TRACE_DIR/events.jsonl` (directory
//!   defaults to `.`, created if missing).
//!
//! # Event schema (version [`TRACE_SCHEMA_VERSION`])
//!
//! One JSON object per line. Common fields: `v` (schema version), `ev`
//! (event kind), `run` (per-process run id), `pid`, `wall_ms` (unix wall
//! clock, milliseconds). Kinds:
//!
//! * `meta` — first line of the log: run identity.
//! * `enter` — span opened: `tid`, `name`, optional `arg`, `t_ns`
//!   (monotonic nanoseconds since trace start).
//! * `exit` — span closed: same fields plus `dur_ns` (≥ 0).
//! * `counters` — a [`crate::MetricsRegistry`] dump: `scope` label and a
//!   `counters` object of dotted counter names.
//!
//! Events from different threads interleave freely in the file; within one
//! `tid` enters/exits nest like brackets. `events.jsonl` is truncated per
//! run — point concurrent processes at different `FASTMON_TRACE_DIR`s
//! (the `run_all` driver does this for its children).

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::metrics::MetricsRegistry;
use crate::profile::{self, PhaseAgg};

/// Version of the JSONL event schema (`"v"` field on every line).
pub const TRACE_SCHEMA_VERSION: u32 = 1;

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_PROFILE: u8 = 2;
const STATE_FULL: u8 = 3;

/// What the tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Spans are no-ops.
    Off,
    /// Spans feed the in-process profile aggregate only.
    Profile,
    /// Profile aggregation plus the JSONL event log.
    Full,
}

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

#[inline]
fn state() -> u8 {
    let s = STATE.load(Ordering::Relaxed);
    if s == STATE_UNINIT {
        return init_state_from_env();
    }
    s
}

#[cold]
fn init_state_from_env() -> u8 {
    let s = if env_flag("FASTMON_TRACE") {
        STATE_FULL
    } else if env_flag("FASTMON_PROFILE") || std::env::var_os("FASTMON_PROFILE_OUT").is_some() {
        STATE_PROFILE
    } else {
        STATE_OFF
    };
    // A concurrent force_enable wins; otherwise publish the env answer.
    match STATE.compare_exchange(STATE_UNINIT, s, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => s,
        Err(current) => current,
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false")
    })
}

/// True when spans record anything (profile or full mode).
#[inline]
#[must_use]
pub fn enabled() -> bool {
    state() >= STATE_PROFILE
}

/// True when the JSONL event log is being written.
#[inline]
#[must_use]
pub fn jsonl_enabled() -> bool {
    state() == STATE_FULL
}

/// Forces the trace mode, overriding (and pre-empting) the environment.
///
/// `dir` overrides the event-log directory; it only takes effect if the
/// log file has not been opened yet. Intended for tests and self-checking
/// tools; production runs use the environment gates.
pub fn force_enable(mode: TraceMode, dir: Option<&Path>) {
    if let Some(d) = dir {
        *lock(dir_override()) = Some(d.to_path_buf());
    }
    let s = match mode {
        TraceMode::Off => STATE_OFF,
        TraceMode::Profile => STATE_PROFILE,
        TraceMode::Full => STATE_FULL,
    };
    STATE.store(s, Ordering::Relaxed);
}

fn dir_override() -> &'static Mutex<Option<PathBuf>> {
    static DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    DIR.get_or_init(|| Mutex::new(None))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Global sink: run identity + the (lazily opened) event-log file.

enum SinkFile {
    Unopened,
    Open(std::io::BufWriter<fs::File>),
    /// Opening failed; events are dropped (reported once on stderr).
    Failed,
}

struct Sink {
    run_id: String,
    pid: u32,
    start: Instant,
    wall_ms_at_start: u64,
    file: Mutex<SinkFile>,
}

fn sink() -> &'static Sink {
    static SINK: OnceLock<Sink> = OnceLock::new();
    SINK.get_or_init(|| {
        let pid = std::process::id();
        let wall_ns = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        // FNV-1a over pid + boot wall clock: unique enough per process run.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in pid.to_le_bytes().into_iter().chain(wall_ns.to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        #[allow(clippy::cast_possible_truncation)]
        let wall_ms_at_start = (wall_ns / 1_000_000) as u64;
        Sink {
            run_id: format!("{h:016x}"),
            pid,
            start: Instant::now(),
            wall_ms_at_start,
            file: Mutex::new(SinkFile::Unopened),
        }
    })
}

fn now_ns() -> u64 {
    #[allow(clippy::cast_possible_truncation)]
    let ns = sink().start.elapsed().as_nanos() as u64;
    ns
}

/// The per-process run identifier stamped on every event line.
#[must_use]
pub fn run_id() -> String {
    sink().run_id.clone()
}

fn trace_dir() -> PathBuf {
    if let Some(d) = lock(dir_override()).clone() {
        return d;
    }
    std::env::var_os("FASTMON_TRACE_DIR").map_or_else(|| PathBuf::from("."), PathBuf::from)
}

fn write_to_sink(lines: &str) {
    if lines.is_empty() {
        return;
    }
    let s = sink();
    let mut file = lock(&s.file);
    if matches!(*file, SinkFile::Unopened) {
        let dir = trace_dir();
        let path = dir.join("events.jsonl");
        let opened = fs::create_dir_all(&dir)
            .and_then(|()| fs::File::create(&path))
            .map(std::io::BufWriter::new);
        *file = match opened {
            Ok(mut f) => {
                let mut meta = String::new();
                let _ = write!(
                    meta,
                    "{{\"v\":{TRACE_SCHEMA_VERSION},\"ev\":\"meta\",\"run\":\"{}\",\"pid\":{},\"wall_ms\":{}}}",
                    s.run_id, s.pid, s.wall_ms_at_start
                );
                meta.push('\n');
                let _ = f.write_all(meta.as_bytes());
                SinkFile::Open(f)
            }
            Err(e) => {
                eprintln!(
                    "[fastmon-obs] cannot open {}: {e}; trace events will be dropped",
                    path.display()
                );
                SinkFile::Failed
            }
        };
    }
    if let SinkFile::Open(f) = &mut *file {
        let _ = f.write_all(lines.as_bytes());
    }
}

fn flush_sink_file() {
    if let SinkFile::Open(f) = &mut *lock(&sink().file) {
        let _ = f.flush();
    }
}

// ---------------------------------------------------------------------------
// Per-thread span stack + event buffer.

struct Frame {
    name: &'static str,
    arg: Option<u64>,
    start_ns: u64,
    child_ns: u64,
}

struct ThreadBuf {
    tid: u32,
    frames: Vec<Frame>,
    lines: String,
    phases: HashMap<&'static str, PhaseAgg>,
    collapsed: HashMap<String, u64>,
}

/// Buffered event lines are pushed to the sink once the buffer passes this
/// size (and on thread exit / explicit [`flush`]).
const FLUSH_BYTES: usize = 16 * 1024;

impl ThreadBuf {
    fn new() -> Self {
        ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            frames: Vec::new(),
            lines: String::new(),
            phases: HashMap::new(),
            collapsed: HashMap::new(),
        }
    }

    fn event_head(&mut self, ev: &str, t_ns: u64) {
        let s = sink();
        let wall_ms = s.wall_ms_at_start + t_ns / 1_000_000;
        let _ = write!(
            self.lines,
            "{{\"v\":{TRACE_SCHEMA_VERSION},\"ev\":\"{ev}\",\"run\":\"{}\",\"pid\":{},\"tid\":{},\"t_ns\":{t_ns},\"wall_ms\":{wall_ms}",
            s.run_id, s.pid, self.tid
        );
    }

    fn flush(&mut self) {
        if !self.lines.is_empty() {
            write_to_sink(&self.lines);
            self.lines.clear();
        }
        if !self.phases.is_empty() || !self.collapsed.is_empty() {
            profile::merge_thread(&mut self.phases, &mut self.collapsed);
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
        flush_sink_file();
    }
}

thread_local! {
    static TLB: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

fn with_tlb(f: impl FnOnce(&mut ThreadBuf)) {
    // Ignore spans recorded during thread-local teardown.
    let _ = TLB.try_with(|b| {
        if let Ok(mut b) = b.try_borrow_mut() {
            f(&mut b);
        }
    });
}

// ---------------------------------------------------------------------------
// Spans.

/// Guard returned by [`span`]/[`span_with`]; the span closes when it drops.
#[must_use = "a span closes when its guard drops — bind it with `let _s = ...`"]
#[derive(Debug)]
pub struct Span {
    active: bool,
}

/// Opens a span named `name`. Costs a relaxed load + branch when tracing
/// is off.
#[inline]
pub fn span(name: &'static str) -> Span {
    if state() < STATE_PROFILE {
        return Span { active: false };
    }
    enter(name, None);
    Span { active: true }
}

/// Opens a span with a numeric argument (e.g. a band index).
#[inline]
pub fn span_with(name: &'static str, arg: u64) -> Span {
    if state() < STATE_PROFILE {
        return Span { active: false };
    }
    enter(name, Some(arg));
    Span { active: true }
}

#[cold]
fn enter(name: &'static str, arg: Option<u64>) {
    let t = now_ns();
    let full = jsonl_enabled();
    with_tlb(|b| {
        b.frames.push(Frame {
            name,
            arg,
            start_ns: t,
            child_ns: 0,
        });
        if full {
            b.event_head("enter", t);
            let _ = write!(b.lines, ",\"name\":\"{name}\"");
            if let Some(a) = arg {
                let _ = write!(b.lines, ",\"arg\":{a}");
            }
            b.lines.push_str("}\n");
            if b.lines.len() >= FLUSH_BYTES {
                write_to_sink(&b.lines);
                b.lines.clear();
            }
        }
    });
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.active {
            exit();
        }
    }
}

#[cold]
fn exit() {
    let t = now_ns();
    let full = jsonl_enabled();
    with_tlb(|b| {
        let Some(frame) = b.frames.pop() else {
            return; // unbalanced exit (span guard leaked across threads)
        };
        let dur = t.saturating_sub(frame.start_ns);
        let self_ns = dur.saturating_sub(frame.child_ns);
        if let Some(parent) = b.frames.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(dur);
        }
        let agg = b.phases.entry(frame.name).or_default();
        agg.count += 1;
        agg.total_ns += dur;
        agg.self_ns += self_ns;
        // flamegraph-style collapsed stack: ancestor;...;self
        let mut stack = String::new();
        for f in &b.frames {
            stack.push_str(f.name);
            stack.push(';');
        }
        stack.push_str(frame.name);
        *b.collapsed.entry(stack).or_insert(0) += self_ns;
        if full {
            b.event_head("exit", t);
            let _ = write!(b.lines, ",\"name\":\"{}\"", frame.name);
            if let Some(a) = frame.arg {
                let _ = write!(b.lines, ",\"arg\":{a}");
            }
            let _ = write!(b.lines, ",\"dur_ns\":{dur}}}");
            b.lines.push('\n');
            if b.lines.len() >= FLUSH_BYTES {
                write_to_sink(&b.lines);
                b.lines.clear();
            }
        }
    });
}

/// Writes a `counters` event dumping `registry` under a `scope` label
/// (no-op unless the JSONL log is enabled).
pub fn emit_counters(scope: &str, registry: &MetricsRegistry) {
    if !jsonl_enabled() {
        return;
    }
    let t = now_ns();
    let json = registry.to_json();
    let scope = crate::json::escape(scope);
    with_tlb(|b| {
        b.event_head("counters", t);
        let _ = write!(b.lines, ",\"scope\":\"{scope}\",\"counters\":{json}}}");
        b.lines.push('\n');
    });
}

/// Writes a `chain` event linking this run's trace to the run whose
/// checkpoint it resumed (no-op unless the JSONL log is enabled).
///
/// `prev_run` is the predecessor's run id as recovered from the
/// checkpoint's run sidecar; the event makes a kill -9 → resume pair
/// greppable as one linked trail across two `events.jsonl` files instead
/// of two unrelated logs.
pub fn emit_chain(prev_run: u64) {
    if !jsonl_enabled() {
        return;
    }
    let t = now_ns();
    with_tlb(|b| {
        b.event_head("chain", t);
        let _ = write!(b.lines, ",\"prev_run\":\"{prev_run:016x}\"}}");
        b.lines.push('\n');
    });
}

/// Flushes the calling thread's buffered events and profile aggregates,
/// then flushes the event-log file. Worker threads flush automatically
/// when they exit; call this on the main thread before reading
/// `events.jsonl` or a profile report.
pub fn flush() {
    with_tlb(ThreadBuf::flush);
    flush_sink_file();
}

/// End-of-run hook for binaries: [`flush`] plus, when
/// `FASTMON_PROFILE_OUT` is set, writing the profile report there.
pub fn finish() {
    flush();
    profile::write_if_requested();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace mode and the sink are process-global, so unit tests here stick
    // to profile mode + line formatting; the end-to-end JSONL file path is
    // covered by crates/bench/tests/trace_events.rs (its own process).

    #[test]
    fn disabled_spans_are_inert() {
        // Force Off explicitly: other tests may have enabled profiling.
        force_enable(TraceMode::Off, None);
        let s = span("never");
        assert!(!s.active);
        drop(s);
        force_enable(TraceMode::Profile, None);
    }

    #[test]
    fn nested_spans_aggregate_self_time() {
        force_enable(TraceMode::Profile, None);
        {
            let _outer = span("outer_test_phase");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span_with("inner_test_phase", 7);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        flush();
        let report = profile::snapshot();
        let outer = report
            .phases
            .iter()
            .find(|(n, _)| n == "outer_test_phase")
            .map(|(_, a)| a.clone())
            .unwrap();
        let inner = report
            .phases
            .iter()
            .find(|(n, _)| n == "inner_test_phase")
            .map(|(_, a)| a.clone())
            .unwrap();
        assert!(outer.count >= 1 && inner.count >= 1);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns <= outer.total_ns);
        assert!(report
            .collapsed
            .iter()
            .any(|(s, _)| s == "outer_test_phase;inner_test_phase"));
    }

    #[test]
    fn event_lines_parse_with_the_inhouse_parser() {
        let mut b = ThreadBuf::new();
        b.event_head("enter", 42);
        b.lines.push_str(",\"name\":\"x\"}\n");
        b.event_head("exit", 99);
        b.lines.push_str(",\"name\":\"x\",\"dur_ns\":57}\n");
        for line in b.lines.clone().lines() {
            let v = crate::json::parse(line).unwrap();
            assert_eq!(
                v.get("v").and_then(crate::json::Value::as_u64),
                Some(u64::from(TRACE_SCHEMA_VERSION))
            );
            assert!(v.get("run").and_then(crate::json::Value::as_str).is_some());
            assert!(v
                .get("wall_ms")
                .and_then(crate::json::Value::as_u64)
                .is_some());
        }
        b.lines.clear(); // keep Drop from writing test lines to a real sink
    }

    #[test]
    fn env_flag_parses_common_spellings() {
        std::env::set_var("FASTMON_OBS_TEST_FLAG", "1");
        assert!(env_flag("FASTMON_OBS_TEST_FLAG"));
        std::env::set_var("FASTMON_OBS_TEST_FLAG", "0");
        assert!(!env_flag("FASTMON_OBS_TEST_FLAG"));
        std::env::set_var("FASTMON_OBS_TEST_FLAG", "false");
        assert!(!env_flag("FASTMON_OBS_TEST_FLAG"));
        std::env::remove_var("FASTMON_OBS_TEST_FLAG");
        assert!(!env_flag("FASTMON_OBS_TEST_FLAG"));
    }
}
