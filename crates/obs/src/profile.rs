//! Post-run self-time profiles built from span enters/exits.
//!
//! Whenever tracing (profile or full mode) is active, every span exit
//! feeds two thread-local aggregates that are merged into a process-wide
//! table when the thread ends (or on [`crate::flush`]):
//!
//! * a **per-phase table**: span name → `{count, total_ns, self_ns}`
//!   where *self* time excludes child spans;
//! * a **collapsed-stack table** (flamegraph text format): the `;`-joined
//!   span stack → accumulated self nanoseconds.
//!
//! [`snapshot`] returns both, [`render_table`]/[`render_collapsed`] format
//! them for humans, and [`report_json`] produces the versioned JSON that
//! `perf_snapshot` embeds in `BENCH_analysis.json` and the `run_all`
//! driver folds into `RUN_MANIFEST.json` (children write it to the path
//! named by `FASTMON_PROFILE_OUT`; see [`write_if_requested`]).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock, PoisonError};

/// Schema version of the profile-report JSON.
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// Aggregate for one phase (span name).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Completed spans with this name.
    pub count: u64,
    /// Wall nanoseconds inside the span, children included.
    pub total_ns: u64,
    /// Wall nanoseconds inside the span, children excluded.
    pub self_ns: u64,
}

/// A merged snapshot of the process-wide profile.
#[derive(Debug, Default, Clone)]
pub struct ProfileReport {
    /// Per-phase aggregates, sorted by self time (descending).
    pub phases: Vec<(String, PhaseAgg)>,
    /// Collapsed stacks (`a;b;c` → self ns), sorted by self time
    /// (descending).
    pub collapsed: Vec<(String, u64)>,
}

#[derive(Default)]
struct Global {
    phases: HashMap<String, PhaseAgg>,
    collapsed: HashMap<String, u64>,
}

fn global() -> &'static Mutex<Global> {
    static GLOBAL: OnceLock<Mutex<Global>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Global::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Global> {
    global().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Merges (and drains) one thread's local aggregates into the global
/// profile. Called by the tracer; not part of the public workflow.
pub(crate) fn merge_thread(
    phases: &mut HashMap<&'static str, PhaseAgg>,
    collapsed: &mut HashMap<String, u64>,
) {
    let mut g = lock();
    for (name, agg) in phases.drain() {
        let e = g.phases.entry(name.to_owned()).or_default();
        e.count += agg.count;
        e.total_ns += agg.total_ns;
        e.self_ns += agg.self_ns;
    }
    for (stack, ns) in collapsed.drain() {
        *g.collapsed.entry(stack).or_insert(0) += ns;
    }
}

/// A merged snapshot of everything recorded so far (call [`crate::flush`]
/// first so the calling thread's own spans are included).
#[must_use]
pub fn snapshot() -> ProfileReport {
    let g = lock();
    let mut phases: Vec<(String, PhaseAgg)> = g
        .phases
        .iter()
        .map(|(n, a)| (n.clone(), a.clone()))
        .collect();
    phases.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(&b.0)));
    let mut collapsed: Vec<(String, u64)> =
        g.collapsed.iter().map(|(s, &ns)| (s.clone(), ns)).collect();
    collapsed.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ProfileReport { phases, collapsed }
}

/// Clears the global profile (between repeated measurements in one
/// process).
pub fn reset() {
    let mut g = lock();
    g.phases.clear();
    g.collapsed.clear();
}

/// Renders the per-phase table as aligned text.
#[must_use]
pub fn render_table(report: &ProfileReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>12} {:>12} {:>7}",
        "phase", "count", "total ms", "self ms", "self %"
    );
    let total_self: u64 = report.phases.iter().map(|(_, a)| a.self_ns).sum();
    for (name, agg) in &report.phases {
        #[allow(clippy::cast_precision_loss)]
        let pct = if total_self == 0 {
            0.0
        } else {
            agg.self_ns as f64 * 100.0 / total_self as f64
        };
        #[allow(clippy::cast_precision_loss)]
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>12.3} {:>12.3} {:>6.1}%",
            name,
            agg.count,
            agg.total_ns as f64 / 1e6,
            agg.self_ns as f64 / 1e6,
            pct
        );
    }
    out
}

/// Renders the collapsed stacks in flamegraph text format
/// (`stack;frames self_ns` per line, suitable for `flamegraph.pl`).
#[must_use]
pub fn render_collapsed(report: &ProfileReport) -> String {
    let mut out = String::new();
    for (stack, ns) in &report.collapsed {
        let _ = writeln!(out, "{stack} {ns}");
    }
    out
}

/// The report as one-line JSON:
/// `{"schema_version":1,"phases":{name:{count,total_ns,self_ns}},"collapsed":[[stack,ns]]}`.
#[must_use]
pub fn report_json(report: &ProfileReport) -> String {
    let mut s = format!("{{\"schema_version\":{PROFILE_SCHEMA_VERSION},\"phases\":{{");
    for (i, (name, agg)) in report.phases.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\"{}\":{{\"count\":{},\"total_ns\":{},\"self_ns\":{}}}",
            crate::json::escape(name),
            agg.count,
            agg.total_ns,
            agg.self_ns
        );
    }
    s.push_str("},\"collapsed\":[");
    for (i, (stack, ns)) in report.collapsed.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[\"{}\",{ns}]", crate::json::escape(stack));
    }
    s.push_str("]}");
    s
}

/// When `FASTMON_PROFILE_OUT` names a path, writes the current report
/// there as JSON (used by bench children so `run_all` can embed per-phase
/// timings into `RUN_MANIFEST.json`). Failures are reported on stderr,
/// never fatal.
pub fn write_if_requested() {
    let Some(path) = std::env::var_os("FASTMON_PROFILE_OUT") else {
        return;
    };
    let report = snapshot();
    let mut json = report_json(&report);
    json.push('\n');
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!(
            "[fastmon-obs] cannot write profile to {}: {e}",
            std::path::Path::new(&path).display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfileReport {
        ProfileReport {
            phases: vec![
                (
                    "analyze".into(),
                    PhaseAgg {
                        count: 2,
                        total_ns: 5_000_000,
                        self_ns: 3_000_000,
                    },
                ),
                (
                    "band".into(),
                    PhaseAgg {
                        count: 8,
                        total_ns: 2_000_000,
                        self_ns: 2_000_000,
                    },
                ),
            ],
            collapsed: vec![
                ("analyze;band".into(), 2_000_000),
                ("analyze".into(), 3_000_000),
            ],
        }
    }

    #[test]
    fn table_and_collapsed_render() {
        let r = sample();
        let table = render_table(&r);
        assert!(table.contains("analyze"));
        assert!(table.contains("self %"));
        let collapsed = render_collapsed(&r);
        assert!(collapsed.contains("analyze;band 2000000"));
    }

    #[test]
    fn report_json_is_parseable() {
        let r = sample();
        let v = crate::json::parse(&report_json(&r)).unwrap();
        assert_eq!(
            v.get("schema_version").and_then(crate::json::Value::as_u64),
            Some(u64::from(PROFILE_SCHEMA_VERSION))
        );
        let band = v
            .get("phases")
            .and_then(|p| p.get("band"))
            .and_then(|b| b.get("count"))
            .and_then(crate::json::Value::as_u64);
        assert_eq!(band, Some(8));
        assert_eq!(
            v.get("collapsed")
                .and_then(crate::json::Value::as_arr)
                .map(<[_]>::len),
            Some(2)
        );
    }
}
