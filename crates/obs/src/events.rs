//! Newline-delimited JSON event streaming.
//!
//! The daemon (and any other long-running driver) streams progress back
//! to clients as JSONL: one self-contained JSON object per line, built
//! with [`Record`] and written through a [`StreamSink`]. Both halves
//! reuse the in-house [`crate::json`] escaping/parsing so the emitted
//! lines round-trip through the same parser the test suite validates
//! with — no serde, offline build.
//!
//! [`Record`] is an ordered object builder: fields appear on the wire in
//! insertion order, which keeps golden-line assertions and `grep`-based
//! debugging stable. It never fails — keys are expected to be plain
//! ASCII identifiers, values are escaped.

use std::io::{self, Write};
use std::sync::{Mutex, PoisonError};

/// An ordered single-line JSON object under construction.
///
/// ```
/// use fastmon_obs::events::Record;
/// let line = Record::new()
///     .str("event", "band")
///     .u64("seq", 3)
///     .bool("resumed", false)
///     .finish();
/// assert_eq!(line, r#"{"event":"band","seq":3,"resumed":false}"#);
/// ```
#[derive(Debug)]
pub struct Record {
    buf: String,
    first: bool,
}

impl Default for Record {
    fn default() -> Self {
        Record::new()
    }
}

impl Record {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> Self {
        Record {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&crate::json::escape(key));
        self.buf.push_str("\":");
    }

    /// Appends a string field (value escaped).
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&crate::json::escape(value));
        self.buf.push('"');
        self
    }

    /// Appends an unsigned integer field.
    #[must_use]
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Appends a hex-encoded 64-bit fingerprint field (as a JSON string,
    /// zero-padded to 16 digits — u64s above 2^53 don't survive an `f64`
    /// round-trip through JSON numbers).
    #[must_use]
    pub fn fingerprint(self, key: &str, value: u64) -> Self {
        self.str(key, &format!("{value:016x}"))
    }

    /// Appends a float field (finite values only; NaN/inf become null).
    #[must_use]
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        if value.is_finite() {
            self.buf.push_str(&format!("{value}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Appends a boolean field.
    #[must_use]
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Appends a pre-rendered JSON fragment verbatim (caller guarantees
    /// validity — e.g. `MetricsRegistry::to_json()` output).
    #[must_use]
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the line (no trailing newline).
    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Pre-built record lines for the shard-worker heartbeat protocol.
///
/// A supervised shard worker writes these to its stdout pipe, one per
/// line; the supervisor parses them back with [`crate::json::parse`].
/// Keeping the builders next to [`Record`] pins the wire schema in one
/// place for both sides (core's supervisor, bench/daemon workers, and
/// the chaos tests).
pub mod shard {
    use super::Record;

    /// Band-boundary liveness: the worker has durably checkpointed up to
    /// `next_pattern` of `total_patterns`.
    #[must_use]
    pub fn heartbeat(shard: usize, shards: usize, next_pattern: usize, total: usize) -> String {
        Record::new()
            .str("event", "shard_heartbeat")
            .u64("shard", shard as u64)
            .u64("shards", shards as u64)
            .u64("next_pattern", next_pattern as u64)
            .u64("total_patterns", total as u64)
            .finish()
    }

    /// The worker resumed from an existing `shard-i-of-n.ckpt`.
    #[must_use]
    pub fn resumed(shard: usize, shards: usize, next_pattern: usize, total: usize) -> String {
        Record::new()
            .str("event", "shard_resumed")
            .u64("shard", shard as u64)
            .u64("shards", shards as u64)
            .u64("next_pattern", next_pattern as u64)
            .u64("total_patterns", total as u64)
            .finish()
    }

    /// The worker landed its result file (fingerprint is the shard's own
    /// checkpoint fingerprint, not the merged campaign's).
    #[must_use]
    pub fn done(shard: usize, shards: usize, fingerprint: u64) -> String {
        Record::new()
            .str("event", "shard_done")
            .u64("shard", shard as u64)
            .u64("shards", shards as u64)
            .fingerprint("fingerprint", fingerprint)
            .finish()
    }

    /// A typed failure the worker could still report before exiting
    /// nonzero.
    #[must_use]
    pub fn error(shard: usize, shards: usize, message: &str) -> String {
        Record::new()
            .str("event", "shard_error")
            .u64("shard", shard as u64)
            .u64("shards", shards as u64)
            .str("message", message)
            .finish()
    }
}

/// A line-at-a-time JSONL writer shared between threads.
///
/// Each [`emit`](StreamSink::emit) appends exactly one `line + '\n'` and
/// flushes under a mutex, so records from concurrent workers never
/// interleave mid-line — the framing invariant the protocol fuzz suite
/// leans on.
#[derive(Debug)]
pub struct StreamSink<W: Write> {
    inner: Mutex<W>,
}

impl<W: Write> StreamSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        StreamSink {
            inner: Mutex::new(writer),
        }
    }

    /// Writes one record line atomically and flushes.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's I/O error (a disconnected
    /// client socket surfaces here — Rust ignores `SIGPIPE`, so the
    /// caller sees an `Err`, not a dead process).
    pub fn emit(&self, line: &str) -> io::Result<()> {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        guard.write_all(line.as_bytes())?;
        guard.write_all(b"\n")?;
        guard.flush()
    }

    /// Consumes the sink and returns the writer.
    pub fn into_inner(self) -> W {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};

    #[test]
    fn records_round_trip_through_the_inhouse_parser() {
        let line = Record::new()
            .str("event", "done")
            .str("name", "job \"7\"\nline2")
            .u64("patterns", 128)
            .fingerprint("fp", 0x00ab_cdef_0123_4567)
            .f64("coverage", 0.875)
            .f64("bad", f64::NAN)
            .bool("resumed", true)
            .raw("metrics", r#"{"sim.cones_simulated":4}"#)
            .finish();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("event").and_then(Value::as_str), Some("done"));
        assert_eq!(
            v.get("name").and_then(Value::as_str),
            Some("job \"7\"\nline2")
        );
        assert_eq!(v.get("patterns").and_then(Value::as_u64), Some(128));
        assert_eq!(
            v.get("fp").and_then(Value::as_str),
            Some("00abcdef01234567")
        );
        assert_eq!(v.get("coverage").and_then(Value::as_f64), Some(0.875));
        assert_eq!(v.get("bad"), Some(&Value::Null));
        assert_eq!(v.get("resumed"), Some(&Value::Bool(true)));
        assert_eq!(
            v.get("metrics")
                .and_then(|m| m.get("sim.cones_simulated"))
                .and_then(Value::as_u64),
            Some(4)
        );
    }

    #[test]
    fn empty_record_is_an_empty_object() {
        assert_eq!(Record::new().finish(), "{}");
    }

    #[test]
    fn sink_emits_one_line_per_record_and_flushes() {
        let sink = StreamSink::new(Vec::new());
        sink.emit(&Record::new().u64("a", 1).finish()).unwrap();
        sink.emit(&Record::new().u64("b", 2).finish()).unwrap();
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
        for line in text.lines() {
            json::parse(line).unwrap();
        }
    }
}
