//! Guard-band (detection window) semantics of the programmable delay
//! monitor, as illustrated in Fig. 2 of the paper.
//!
//! A monitor at a flip-flop samples the data signal `D` twice at the clock
//! edge `t_clk`: the mission flip-flop captures `Q = D(t_clk)` and the
//! shadow register captures `Q' = D(t_clk − d)` (the signal seen through the
//! delay element `d`). The XOR of the two captures raises an **alert**: the
//! signal was not stable during the detection window `(t_clk − d, t_clk]`.
//!
//! A wide delay element (large guard band) senses early degradation; after
//! aging countermeasures, a smaller element tracks the remaining margin
//! until an imminent failure (Fig. 2 (b)–(c)).
//!
//! # Example
//!
//! ```
//! use fastmon_monitor::guard;
//! use fastmon_sim::Waveform;
//!
//! // data settles at t = 280
//! let d = Waveform::with_transitions(false, vec![280.0]);
//! // a guard band of 30 before the edge at 300 flags the late transition
//! assert!(guard::alert(&d, 300.0, 30.0));
//! // a narrow band of 10 does not: the signal is stable after 290
//! assert!(!guard::alert(&d, 300.0, 10.0));
//! ```

use fastmon_sim::Waveform;
use fastmon_timing::Time;

/// Whether the monitor raises an alert at clock edge `t_clk` with delay
/// element `d`: the mission capture `D(t_clk)` differs from the shadow
/// capture `D(t_clk − d)`.
///
/// Note the XOR-comparator blind spot inherited from the hardware: a signal
/// toggling an *even* number of times inside the window produces identical
/// captures and no alert. Use [`is_stable`] for the idealized
/// stability check.
#[must_use]
pub fn alert(data: &Waveform, t_clk: Time, d: Time) -> bool {
    data.value_at(t_clk) != data.value_at(t_clk - d)
}

/// Idealized stability check: `true` if the signal does not toggle inside
/// the detection window `(t_clk − d, t_clk]` at all.
#[must_use]
pub fn is_stable(data: &Waveform, t_clk: Time, d: Time) -> bool {
    data.transitions()
        .iter()
        .all(|&t| t <= t_clk - d || t > t_clk)
}

/// The *slack* of the latest transition against the clock edge: how much
/// earlier than `t_clk` the signal settles (negative if it settles after
/// the edge). Returns `t_clk` itself for constant signals.
#[must_use]
pub fn settle_slack(data: &Waveform, t_clk: Time) -> Time {
    match data.last_transition() {
        Some(t) => t_clk - t,
        None => t_clk,
    }
}

/// The smallest delay-element value (from `delays`) whose guard band the
/// signal violates, or `None` if the signal is stable even for the largest
/// element.
///
/// During lifetime monitoring the returned element index tracks the
/// degradation state: a young device alerts for no element, an aging device
/// first violates the widest band, a failing one violates even the
/// narrowest.
#[must_use]
pub fn first_violated(data: &Waveform, t_clk: Time, delays: &[Time]) -> Option<usize> {
    let mut best: Option<(usize, Time)> = None;
    for (i, &d) in delays.iter().enumerate() {
        if !is_stable(data, t_clk, d) {
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((i, d)),
            }
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alert_matches_fig2_scenarios() {
        let t_clk = 300.0;
        // (b) stable signal, wide window: no alert
        let stable = Waveform::with_transitions(false, vec![100.0]);
        assert!(!alert(&stable, t_clk, 100.0));
        // degraded signal toggling inside the window: alert
        let degraded = Waveform::with_transitions(false, vec![250.0]);
        assert!(alert(&degraded, t_clk, 100.0));
        // (c) after countermeasures, narrow window tolerates it
        assert!(!alert(&degraded, t_clk, 20.0));
        // further degradation violates even the narrow window
        let failing = Waveform::with_transitions(false, vec![295.0]);
        assert!(alert(&failing, t_clk, 20.0));
    }

    #[test]
    fn xor_blind_spot_vs_stability() {
        // two toggles inside the window: XOR comparator misses it
        let glitchy = Waveform::with_transitions(false, vec![280.0, 290.0]);
        assert!(!alert(&glitchy, 300.0, 50.0));
        assert!(!is_stable(&glitchy, 300.0, 50.0));
    }

    #[test]
    fn window_boundaries() {
        // transition exactly at t_clk - d is outside the window (the shadow
        // register samples the *new* value)
        let w = Waveform::with_transitions(false, vec![250.0]);
        assert!(!alert(&w, 300.0, 50.0));
        assert!(is_stable(&w, 300.0, 50.0));
        // transition exactly at t_clk is inside
        let w = Waveform::with_transitions(false, vec![300.0]);
        assert!(alert(&w, 300.0, 50.0));
    }

    #[test]
    fn settle_slack_values() {
        let w = Waveform::with_transitions(false, vec![280.0]);
        assert_eq!(settle_slack(&w, 300.0), 20.0);
        assert_eq!(settle_slack(&Waveform::constant(true), 300.0), 300.0);
        let late = Waveform::with_transitions(false, vec![310.0]);
        assert_eq!(settle_slack(&late, 300.0), -10.0);
    }

    #[test]
    fn first_violated_tracks_degradation() {
        let delays = [15.0, 30.0, 45.0, 100.0];
        let young = Waveform::with_transitions(false, vec![100.0]);
        assert_eq!(first_violated(&young, 300.0, &delays), None);
        let aging = Waveform::with_transitions(false, vec![230.0]);
        // violates only the 100-wide band
        assert_eq!(first_violated(&aging, 300.0, &delays), Some(3));
        let failing = Waveform::with_transitions(false, vec![292.0]);
        // violates every band; smallest is index 0
        assert_eq!(first_violated(&failing, 300.0, &delays), Some(0));
    }
}
