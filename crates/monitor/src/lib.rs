//! Programmable delay monitors for the `fastmon` toolkit.
//!
//! Models the in-situ aging monitor of the paper (Fig. 2): a shadow
//! flip-flop that samples the observed data signal through one of several
//! selectable delay elements and raises an *alert* when its capture
//! disagrees with the mission flip-flop. The crate covers both uses of the
//! monitor:
//!
//! 1. **Aging / wear-out prediction** — [`guard`] implements the
//!    detection-window semantics (a signal toggling inside the guard band
//!    raises an alert), and [`AgingModel`] provides a BTI-like gradual
//!    delay-degradation model plus early-life marginality injection to
//!    drive lifecycle studies.
//! 2. **FAST reuse for hidden-delay-fault testing** — [`MonitorPlacement`]
//!    selects monitors at long path ends (top fraction of observation
//!    points by arrival time), and [`ConfigSet`]/[`shifted_detection`]
//!    implement the detection-range algebra `I_SR(φ, o) = I_FF(φ, o) + d`.
//!
//! # Example
//!
//! ```
//! use fastmon_monitor::{ConfigSet, MonitorConfig};
//!
//! let configs = ConfigSet::paper_defaults(300.0);
//! // Off + four delay elements = the paper's |C| = 5
//! assert_eq!(configs.len(), 5);
//! assert_eq!(configs.shift(MonitorConfig::Off), 0.0);
//! assert_eq!(configs.max_shift(), 100.0); // t_nom / 3
//! ```

// Robustness gate: library code must not `unwrap`/`expect` (tests are
// exempt); structurally-infallible invariants use explicit `unreachable!`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
mod aging;
mod config;
mod overhead;
mod placement;
mod shift;

pub mod guard;

pub use aging::{inject_marginality, AgingModel};
pub use config::{ConfigSet, MonitorConfig};
pub use overhead::MonitorOverhead;
pub use placement::MonitorPlacement;
pub use shift::{at_speed_monitor_detectable, shifted_detection};
