use fastmon_netlist::{Circuit, NodeId};
use fastmon_timing::{DelayAnnotation, Time};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A simple BTI/HCI-style delay degradation model.
///
/// Gate delays grow sublinearly with operational time, following the
/// classic power law `Δd/d = a · t^n` (with `t` in years, `n ≈ 0.2` for
/// BTI). Per-gate stress factors (deterministic in the seed) model the
/// workload-dependent spread of degradation across a die, and an optional
/// *marginality* injects the fast early-life degradation of a weak device
/// that the paper targets.
///
/// The model exists to drive lifecycle studies: ageing a
/// [`DelayAnnotation`] year by year and watching monitor guard bands get
/// violated (see the `aging_prediction` example of the workspace).
///
/// # Example
///
/// ```
/// use fastmon_monitor::AgingModel;
///
/// let model = AgingModel::bti_like();
/// let d0 = model.degradation(0.0);
/// let d5 = model.degradation(5.0);
/// let d10 = model.degradation(10.0);
/// assert_eq!(d0, 0.0);
/// assert!(d5 > 0.0 && d10 > d5);
/// // sublinear: the second 5 years add less than the first
/// assert!(d10 - d5 < d5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingModel {
    /// Relative delay increase after one year at nominal stress.
    pub rate: f64,
    /// Power-law exponent (≈ 0.2 for BTI).
    pub exponent: f64,
}

impl AgingModel {
    /// A BTI-like model: ~6 % delay increase after one year, power-law
    /// exponent 0.2.
    #[must_use]
    pub fn bti_like() -> Self {
        AgingModel {
            rate: 0.06,
            exponent: 0.2,
        }
    }

    /// The relative delay increase after `years` of operation at nominal
    /// stress.
    #[must_use]
    pub fn degradation(&self, years: f64) -> f64 {
        if years <= 0.0 {
            0.0
        } else {
            self.rate * years.powf(self.exponent)
        }
    }

    /// Ages an annotation by `years`: every combinational gate's delays are
    /// scaled by `1 + degradation(years) · stress`, where `stress` is a
    /// per-gate factor in `[0.5, 1.5]` sampled deterministically from
    /// `seed`.
    #[must_use]
    pub fn aged(
        &self,
        circuit: &Circuit,
        fresh: &DelayAnnotation,
        years: f64,
        seed: u64,
    ) -> DelayAnnotation {
        let deg = self.degradation(years);
        let mut rise = Vec::with_capacity(circuit.len());
        let mut fall = Vec::with_capacity(circuit.len());
        let mut sigma = Vec::with_capacity(circuit.len());
        for (id, node) in circuit.iter() {
            let factor = if node.kind().is_combinational() {
                1.0 + deg * stress_factor(seed, id.index())
            } else {
                1.0
            };
            rise.push(fresh.rise(id) * factor);
            fall.push(fresh.fall(id) * factor);
            sigma.push(fresh.sigma(id));
        }
        DelayAnnotation::from_raw(rise, fall, sigma)
    }
}

impl Default for AgingModel {
    fn default() -> Self {
        AgingModel::bti_like()
    }
}

fn stress_factor(seed: u64, key: usize) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(
        seed.wrapping_mul(0xa076_1d64_78bd_642f)
            .wrapping_add(key as u64),
    );
    rng.gen_range(0.5..1.5)
}

/// Injects an early-life marginality: gate `weak` receives an extra delay
/// of `extra` picoseconds on both edges — the "hidden delay fault that
/// magnifies quickly after a short term of operation" of the paper's
/// introduction.
///
/// # Panics
///
/// Panics if `weak` is out of range for the annotation.
#[must_use]
pub fn inject_marginality(
    circuit: &Circuit,
    annot: &DelayAnnotation,
    weak: NodeId,
    extra: Time,
) -> DelayAnnotation {
    assert!(weak.index() < circuit.len(), "weak gate out of range");
    let mut rise = Vec::with_capacity(circuit.len());
    let mut fall = Vec::with_capacity(circuit.len());
    let mut sigma = Vec::with_capacity(circuit.len());
    for id in circuit.node_ids() {
        let bump = if id == weak { extra } else { 0.0 };
        rise.push(annot.rise(id) + bump);
        fall.push(annot.fall(id) + bump);
        sigma.push(annot.sigma(id));
    }
    DelayAnnotation::from_raw(rise, fall, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_netlist::library;
    use fastmon_timing::{DelayModel, Sta};

    #[test]
    fn aging_increases_critical_path_monotonically() {
        let c = library::s27();
        let fresh = DelayAnnotation::nominal(&c, &DelayModel::nangate45_like());
        let model = AgingModel::bti_like();
        let mut prev = Sta::analyze(&c, &fresh).critical_path_length();
        for years in [1.0, 3.0, 7.0, 15.0] {
            let aged = model.aged(&c, &fresh, years, 42);
            let cpl = Sta::analyze(&c, &aged).critical_path_length();
            assert!(cpl > prev, "cpl must grow with age");
            prev = cpl;
        }
    }

    #[test]
    fn aging_is_deterministic() {
        let c = library::s27();
        let fresh = DelayAnnotation::nominal(&c, &DelayModel::nangate45_like());
        let model = AgingModel::bti_like();
        assert_eq!(
            model.aged(&c, &fresh, 5.0, 7),
            model.aged(&c, &fresh, 5.0, 7)
        );
    }

    #[test]
    fn sources_do_not_age() {
        let c = library::s27();
        let fresh = DelayAnnotation::nominal(&c, &DelayModel::nangate45_like());
        let aged = AgingModel::bti_like().aged(&c, &fresh, 10.0, 1);
        for &pi in c.inputs() {
            assert_eq!(aged.rise(pi), 0.0);
        }
    }

    #[test]
    fn marginality_bumps_one_gate() {
        let c = library::s27();
        let fresh = DelayAnnotation::nominal(&c, &DelayModel::nangate45_like());
        let weak = c.find("G8").unwrap();
        let bumped = inject_marginality(&c, &fresh, weak, 25.0);
        assert_eq!(bumped.rise(weak), fresh.rise(weak) + 25.0);
        for id in c.node_ids().filter(|&id| id != weak) {
            assert_eq!(bumped.rise(id), fresh.rise(id));
        }
    }

    #[test]
    fn zero_years_is_identity_scale() {
        let c = library::s27();
        let fresh = DelayAnnotation::nominal(&c, &DelayModel::nangate45_like());
        let aged = AgingModel::bti_like().aged(&c, &fresh, 0.0, 3);
        for id in c.node_ids() {
            assert_eq!(aged.rise(id), fresh.rise(id));
        }
    }
}
