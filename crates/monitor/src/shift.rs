use fastmon_faults::{DetectionRange, IntervalSet};
use fastmon_timing::ClockSpec;

use crate::{ConfigSet, MonitorConfig, MonitorPlacement};

/// The detection-range algebra of Sec. III-B: the observation-time set under
/// one chip-wide monitor configuration.
///
/// For every observation point `o` the fault reaches:
///
/// * the mission flip-flop contributes `I_FF(φ, o)` clipped to the legal
///   FAST window `[t_min, t_nom)`,
/// * if `o` is monitored and the configuration selects delay `d`, the
///   shadow register additionally contributes
///   `I_SR(φ, o) = I_FF(φ, o) + d`, clipped to the same window.
///
/// The result is the union over all outputs. Pass the raw (unclipped)
/// [`DetectionRange`] from fault simulation — intervals below `t_min`
/// matter, because a monitor shift can move them into the window.
///
/// # Example
///
/// ```
/// use fastmon_faults::{DetectionRange, Interval, IntervalSet};
/// use fastmon_monitor::{shifted_detection, ConfigSet, MonitorConfig, MonitorPlacement};
/// use fastmon_timing::ClockSpec;
///
/// let clock = ClockSpec::new(300.0, 3.0); // window [100, 300)
/// let configs = ConfigSet::paper_defaults(clock.t_nom);
/// let placement = MonitorPlacement::from_mask(vec![true]);
/// let mut dr = DetectionRange::new();
/// // a short-path fault effect entirely below t_min
/// dr.push(0, IntervalSet::from_intervals([Interval::new(40.0, 80.0)]));
///
/// // invisible to plain FAST...
/// let off = shifted_detection(&dr, &placement, &configs, MonitorConfig::Off, &clock);
/// assert!(off.is_empty());
/// // ...but the 1/3·t_nom delay element shifts it into the window
/// let d4 = shifted_detection(&dr, &placement, &configs, MonitorConfig::Delay(3), &clock);
/// assert!(d4.contains(150.0));
/// ```
#[must_use]
pub fn shifted_detection(
    range: &DetectionRange,
    placement: &MonitorPlacement,
    configs: &ConfigSet,
    config: MonitorConfig,
    clock: &ClockSpec,
) -> IntervalSet {
    let mut out = IntervalSet::new();
    let d = configs.shift(config);
    for (op_index, raw) in range.iter() {
        // mission flip-flop observation
        out = out.union(&raw.clipped(clock.t_min, clock.t_nom));
        // shadow register observation
        if d > 0.0 && placement.is_monitored(op_index) {
            out = out.union(&raw.shifted(d).clipped(clock.t_min, clock.t_nom));
        }
    }
    out
}

/// Whether the monitors make the fault detectable *at nominal speed*: some
/// configuration's shifted range covers the nominal capture time.
///
/// These faults are removed from the FAST target set in step ④/⑤ of the
/// paper's flow — ordinary at-speed monitoring already catches them, no
/// FAST frequency is needed.
///
/// Detection "at t_nom" is evaluated just inside the window boundary
/// (capture at the nominal edge).
#[must_use]
pub fn at_speed_monitor_detectable(
    range: &DetectionRange,
    placement: &MonitorPlacement,
    configs: &ConfigSet,
    clock: &ClockSpec,
) -> bool {
    // sample point just inside [t_min, t_nom)
    let at_speed = clock.t_nom * (1.0 - 1e-9);
    for (op_index, raw) in range.iter() {
        if raw.contains(at_speed) {
            return true; // plain at-speed capture already differs
        }
        if placement.is_monitored(op_index) {
            for d in configs.delays() {
                if raw.shifted(*d).contains(at_speed) {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_faults::Interval;

    fn clock() -> ClockSpec {
        ClockSpec::new(300.0, 3.0) // window [100, 300)
    }

    fn range_at(op: usize, start: f64, end: f64) -> DetectionRange {
        let mut dr = DetectionRange::new();
        dr.push(op, IntervalSet::from_intervals([Interval::new(start, end)]));
        dr
    }

    #[test]
    fn off_config_is_plain_ff_union() {
        let dr = range_at(0, 50.0, 150.0);
        let placement = MonitorPlacement::from_mask(vec![true]);
        let configs = ConfigSet::paper_defaults(300.0);
        let set = shifted_detection(&dr, &placement, &configs, MonitorConfig::Off, &clock());
        assert_eq!(set.as_slice(), &[Interval::new(100.0, 150.0)]);
    }

    #[test]
    fn unmonitored_output_gets_no_shift() {
        let dr = range_at(0, 40.0, 80.0);
        let placement = MonitorPlacement::from_mask(vec![false]);
        let configs = ConfigSet::paper_defaults(300.0);
        let set = shifted_detection(&dr, &placement, &configs, MonitorConfig::Delay(3), &clock());
        assert!(set.is_empty());
    }

    #[test]
    fn shift_extends_detection() {
        let dr = range_at(0, 90.0, 110.0);
        let placement = MonitorPlacement::from_mask(vec![true]);
        let configs = ConfigSet::paper_defaults(300.0);
        // d1 = 15: FF part [100,110) ∪ SR part [105,125)
        let set = shifted_detection(&dr, &placement, &configs, MonitorConfig::Delay(0), &clock());
        assert_eq!(set.as_slice(), &[Interval::new(100.0, 125.0)]);
    }

    #[test]
    fn at_speed_monitor_detection() {
        let placement = MonitorPlacement::from_mask(vec![true]);
        let configs = ConfigSet::paper_defaults(300.0);
        // effect dies at 250 — not at-speed detectable by the FF
        let dr = range_at(0, 210.0, 250.0);
        assert!(!at_speed_monitor_detectable(
            &dr,
            &MonitorPlacement::from_mask(vec![false]),
            &configs,
            &clock()
        ));
        // but a shift of 100 moves it across t_nom: [310, 350) ∌ 300... no.
        // use an interval that straddles 300 after the 100 shift
        let dr = range_at(0, 210.0, 310.0);
        assert!(at_speed_monitor_detectable(
            &dr,
            &placement,
            &configs,
            &clock()
        ));
    }

    #[test]
    fn plain_at_speed_detection_counts_too() {
        let configs = ConfigSet::paper_defaults(300.0);
        let dr = range_at(0, 290.0, 310.0);
        assert!(at_speed_monitor_detectable(
            &dr,
            &MonitorPlacement::from_mask(vec![false]),
            &configs,
            &clock()
        ));
    }

    #[test]
    fn multiple_outputs_union() {
        let mut dr = DetectionRange::new();
        dr.push(
            0,
            IntervalSet::from_intervals([Interval::new(120.0, 130.0)]),
        );
        dr.push(1, IntervalSet::from_intervals([Interval::new(60.0, 70.0)]));
        let placement = MonitorPlacement::from_mask(vec![false, true]);
        let configs = ConfigSet::new(vec![50.0]);
        let set = shifted_detection(&dr, &placement, &configs, MonitorConfig::Delay(0), &clock());
        // op0 FF: [120,130); op1 FF: clipped away; op1 SR: [110,120)
        assert_eq!(set.as_slice(), &[Interval::new(110.0, 130.0)]);
    }
}
