//! Hardware-cost estimation of monitor insertion.
//!
//! The appeal of monitor *reuse* (the paper's [13], [14]) is that the aging
//! monitors are already on chip — FAST support costs nothing extra. This
//! module quantifies what the monitors themselves cost, in standard-cell
//! gate-equivalents, so the reuse argument can be made concrete against a
//! dedicated-DFT alternative.
//!
//! The per-monitor cost model follows the structure of Fig. 2 (a):
//! a shadow flip-flop, an XOR comparator, a `|delays|`-to-1 multiplexer and
//! one delay element per configurable delay.
//!
//! # Example
//!
//! ```
//! use fastmon_monitor::{ConfigSet, MonitorOverhead, MonitorPlacement};
//! use fastmon_netlist::library;
//! use fastmon_timing::{DelayAnnotation, DelayModel, Sta};
//!
//! let circuit = library::s27();
//! let annot = DelayAnnotation::nominal(&circuit, &DelayModel::nangate45_like());
//! let sta = Sta::analyze(&circuit, &annot);
//! let placement = MonitorPlacement::at_long_path_ends(&circuit, &sta, 0.25);
//! let configs = ConfigSet::paper_defaults(300.0);
//! let overhead = MonitorOverhead::estimate(&circuit, &placement, &configs);
//! assert_eq!(overhead.monitors, 1);
//! assert!(overhead.relative_percent > 0.0);
//! ```

use fastmon_netlist::{Circuit, GateKind};

use crate::{ConfigSet, MonitorPlacement};

/// Gate-equivalent (GE) area estimate of a monitor insertion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorOverhead {
    /// Number of inserted monitors.
    pub monitors: usize,
    /// Gate equivalents per monitor.
    pub ge_per_monitor: f64,
    /// Total gate equivalents added.
    pub total_ge: f64,
    /// Baseline circuit area in gate equivalents.
    pub circuit_ge: f64,
    /// Overhead relative to the baseline, in percent.
    pub relative_percent: f64,
}

/// Gate-equivalent weights (NAND2 = 1 GE, the usual convention).
fn kind_ge(kind: GateKind) -> f64 {
    match kind {
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0.0,
        GateKind::Dff => 4.5,
        GateKind::Buf => 0.75,
        GateKind::Not => 0.5,
        GateKind::Nand => 1.0,
        GateKind::Nor => 1.0,
        GateKind::And => 1.25,
        GateKind::Or => 1.25,
        GateKind::Xor => 2.25,
        GateKind::Xnor => 2.25,
    }
}

impl MonitorOverhead {
    /// Estimates the insertion cost of `placement` with delay elements
    /// from `configs`.
    ///
    /// Per monitor: one shadow flip-flop (4.5 GE), one XOR comparator
    /// (2.25 GE), a `k`-to-1 mux (≈ 1.5 GE per 2-input mux, `k − 1` of
    /// them) and one delay element per configurable delay (buffer chains,
    /// ≈ 2 GE each). Multi-input gates are weighted by arity.
    #[must_use]
    pub fn estimate(
        circuit: &Circuit,
        placement: &MonitorPlacement,
        configs: &ConfigSet,
    ) -> MonitorOverhead {
        let k = configs.delays().len().max(1);
        let ge_per_monitor = 4.5 // shadow flip-flop
            + 2.25 // XOR comparator
            + 1.5 * (k as f64 - 1.0) // mux tree
            + 2.0 * k as f64; // delay elements

        let circuit_ge: f64 = circuit
            .iter()
            .map(|(_, node)| {
                let arity_scale = 1.0 + 0.5 * node.fanins().len().saturating_sub(2) as f64;
                kind_ge(node.kind()) * arity_scale
            })
            .sum();

        let monitors = placement.count();
        let total_ge = ge_per_monitor * monitors as f64;
        MonitorOverhead {
            monitors,
            ge_per_monitor,
            total_ge,
            circuit_ge,
            relative_percent: if circuit_ge > 0.0 {
                100.0 * total_ge / circuit_ge
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_netlist::library;
    use fastmon_timing::{DelayAnnotation, DelayModel, Sta};

    fn setup(fraction: f64) -> MonitorOverhead {
        let c = library::s27();
        let annot = DelayAnnotation::nominal(&c, &DelayModel::nangate45_like());
        let sta = Sta::analyze(&c, &annot);
        let placement = MonitorPlacement::at_long_path_ends(&c, &sta, fraction);
        let configs = ConfigSet::paper_defaults(300.0);
        MonitorOverhead::estimate(&c, &placement, &configs)
    }

    #[test]
    fn overhead_scales_with_placement() {
        let quarter = setup(0.25);
        let full = setup(1.0);
        assert_eq!(quarter.monitors, 1);
        assert_eq!(full.monitors, 4);
        assert!((full.total_ge - 4.0 * quarter.total_ge).abs() < 1e-9);
        assert!(full.relative_percent > quarter.relative_percent);
        assert_eq!(quarter.circuit_ge, full.circuit_ge);
    }

    #[test]
    fn more_delay_elements_cost_more() {
        let c = library::s27();
        let placement = MonitorPlacement::full(&c);
        let small = MonitorOverhead::estimate(&c, &placement, &ConfigSet::new(vec![10.0]));
        let large = MonitorOverhead::estimate(
            &c,
            &placement,
            &ConfigSet::new(vec![10.0, 20.0, 30.0, 40.0]),
        );
        assert!(large.ge_per_monitor > small.ge_per_monitor);
    }

    #[test]
    fn zero_monitors_zero_cost() {
        let c = library::s27();
        let o = MonitorOverhead::estimate(
            &c,
            &MonitorPlacement::none(&c),
            &ConfigSet::paper_defaults(300.0),
        );
        assert_eq!(o.monitors, 0);
        assert_eq!(o.total_ge, 0.0);
        assert_eq!(o.relative_percent, 0.0);
    }
}
