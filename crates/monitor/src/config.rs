use std::fmt;

use fastmon_timing::Time;

/// One monitor setting applied (chip-wide) during a test: either the shadow
/// registers are ignored (`Off`) or all monitors select the `Delay(i)`-th
/// delay element.
///
/// The paper assumes "all monitors share the identical delay setting" for a
/// given configuration, which is what this type encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MonitorConfig {
    /// Shadow registers are not used; only mission flip-flops observe.
    Off,
    /// All monitors select delay element `i` (index into
    /// [`ConfigSet::delays`]).
    Delay(u8),
}

impl fmt::Display for MonitorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorConfig::Off => f.write_str("off"),
            MonitorConfig::Delay(i) => write!(f, "d{}", i + 1),
        }
    }
}

/// The set of selectable monitor delay elements of a design.
///
/// The paper's monitors have four delay elements
/// `d ∈ {0.05, 0.10, 0.15, 1/3} · clk`; together with `Off` this yields the
/// configuration set `C` with `|C| = 5` used by the schedule optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSet {
    delays: Vec<Time>,
}

impl ConfigSet {
    /// Creates a configuration set from explicit delay element values (ps).
    ///
    /// # Panics
    ///
    /// Panics if any delay is not positive.
    #[must_use]
    pub fn new(delays: Vec<Time>) -> Self {
        assert!(
            delays.iter().all(|&d| d > 0.0),
            "monitor delays must be positive"
        );
        ConfigSet { delays }
    }

    /// The paper's default elements `{0.05, 0.10, 0.15, 1/3} · t_nom`.
    #[must_use]
    pub fn paper_defaults(t_nom: Time) -> Self {
        ConfigSet::new(vec![0.05 * t_nom, 0.10 * t_nom, 0.15 * t_nom, t_nom / 3.0])
    }

    /// The delay element values.
    #[must_use]
    pub fn delays(&self) -> &[Time] {
        &self.delays
    }

    /// Number of configurations **including** `Off` (the paper's `|C|`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.delays.len() + 1
    }

    /// Returns `true` if there are no delay elements (monitors absent).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.delays.is_empty()
    }

    /// Iterates over all configurations, `Off` first.
    pub fn configs(&self) -> impl Iterator<Item = MonitorConfig> + '_ {
        std::iter::once(MonitorConfig::Off).chain((0..self.delays.len()).map(|i| {
            MonitorConfig::Delay(u8::try_from(i).unwrap_or_else(|_| unreachable!("few delays")))
        }))
    }

    /// The time shift a configuration applies to shadow-register detection
    /// ranges (0 for `Off`).
    ///
    /// # Panics
    ///
    /// Panics if a `Delay` index is out of range.
    #[must_use]
    pub fn shift(&self, config: MonitorConfig) -> Time {
        match config {
            MonitorConfig::Off => 0.0,
            MonitorConfig::Delay(i) => self.delays[i as usize],
        }
    }

    /// The largest selectable delay (0 if no elements exist).
    #[must_use]
    pub fn max_shift(&self) -> Time {
        self.delays.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_shape() {
        let c = ConfigSet::paper_defaults(300.0);
        assert_eq!(c.delays(), &[15.0, 30.0, 45.0, 100.0]);
        assert_eq!(c.len(), 5);
        let configs: Vec<MonitorConfig> = c.configs().collect();
        assert_eq!(configs[0], MonitorConfig::Off);
        assert_eq!(configs.len(), 5);
        assert_eq!(c.shift(configs[4]), 100.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(MonitorConfig::Off.to_string(), "off");
        assert_eq!(MonitorConfig::Delay(3).to_string(), "d4");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_delay_rejected() {
        let _ = ConfigSet::new(vec![10.0, 0.0]);
    }

    #[test]
    fn empty_set_behaves() {
        let c = ConfigSet::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.len(), 1); // only Off
        assert_eq!(c.max_shift(), 0.0);
    }
}
