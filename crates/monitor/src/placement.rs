use fastmon_netlist::Circuit;
use fastmon_timing::Sta;

/// Which observation points carry a programmable delay monitor.
///
/// Monitors are placed "at long path ends" (Agarwal et al., ITC'08; the
/// placement the paper adopts): the observation points are ranked by the
/// latest arrival time of their captured signal and the top `fraction`
/// receive a monitor. The paper uses `fraction = 0.25`.
///
/// # Example
///
/// ```
/// use fastmon_monitor::MonitorPlacement;
/// use fastmon_netlist::library;
/// use fastmon_timing::{DelayAnnotation, DelayModel, Sta};
///
/// let circuit = library::s27();
/// let annot = DelayAnnotation::nominal(&circuit, &DelayModel::nangate45_like());
/// let sta = Sta::analyze(&circuit, &annot);
/// let placement = MonitorPlacement::at_long_path_ends(&circuit, &sta, 0.25);
/// assert_eq!(placement.count(), 1); // 4 observation points × 25 %
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorPlacement {
    monitored: Vec<bool>,
}

impl MonitorPlacement {
    /// Places monitors at the `fraction` of observation points with the
    /// longest arriving paths. At least one monitor is placed for any
    /// positive fraction (rounding to nearest otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn at_long_path_ends(circuit: &Circuit, sta: &Sta, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must lie in [0, 1]"
        );
        let ops = circuit.observe_points();
        let mut monitored = vec![false; ops.len()];
        if fraction > 0.0 && !ops.is_empty() {
            let count = (((ops.len() as f64) * fraction).round() as usize).clamp(1, ops.len());
            let mut ranked: Vec<usize> = (0..ops.len()).collect();
            ranked.sort_by(|&a, &b| {
                let ta = sta.max_arrival(ops[a].driver);
                let tb = sta.max_arrival(ops[b].driver);
                tb.total_cmp(&ta).then(a.cmp(&b))
            });
            for &i in ranked.iter().take(count) {
                monitored[i] = true;
            }
        }
        MonitorPlacement { monitored }
    }

    /// A placement without any monitors (conventional FAST baseline).
    #[must_use]
    pub fn none(circuit: &Circuit) -> Self {
        MonitorPlacement {
            monitored: vec![false; circuit.observe_points().len()],
        }
    }

    /// A placement with a monitor at every observation point.
    #[must_use]
    pub fn full(circuit: &Circuit) -> Self {
        MonitorPlacement {
            monitored: vec![true; circuit.observe_points().len()],
        }
    }

    /// Builds a placement from an explicit per-observation-point mask.
    #[must_use]
    pub fn from_mask(monitored: Vec<bool>) -> Self {
        MonitorPlacement { monitored }
    }

    /// Whether observation point `op_index` carries a monitor.
    #[must_use]
    pub fn is_monitored(&self, op_index: usize) -> bool {
        self.monitored.get(op_index).copied().unwrap_or(false)
    }

    /// Number of placed monitors (the paper's `|M|`).
    #[must_use]
    pub fn count(&self) -> usize {
        self.monitored.iter().filter(|&&m| m).count()
    }

    /// Total number of observation points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.monitored.len()
    }

    /// Returns `true` if there are no observation points at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.monitored.is_empty()
    }

    /// Indices of monitored observation points.
    pub fn monitored_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.monitored
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastmon_timing::{DelayAnnotation, DelayModel};

    fn setup() -> (Circuit, Sta) {
        let c = fastmon_netlist::library::s27();
        let annot = DelayAnnotation::nominal(&c, &DelayModel::nangate45_like());
        let sta = Sta::analyze(&c, &annot);
        (c, sta)
    }

    #[test]
    fn picks_longest_paths_first() {
        let (c, sta) = setup();
        let placement = MonitorPlacement::at_long_path_ends(&c, &sta, 0.25);
        assert_eq!(placement.count(), 1);
        let chosen = placement.monitored_indices().next().unwrap();
        let ops = c.observe_points();
        let chosen_arrival = sta.max_arrival(ops[chosen].driver);
        for (i, op) in ops.iter().enumerate() {
            assert!(
                sta.max_arrival(op.driver) <= chosen_arrival + 1e-12,
                "observation point {i} has a later arrival than the monitor"
            );
        }
    }

    #[test]
    fn fraction_one_monitors_everything() {
        let (c, sta) = setup();
        let placement = MonitorPlacement::at_long_path_ends(&c, &sta, 1.0);
        assert_eq!(placement.count(), c.observe_points().len());
    }

    #[test]
    fn fraction_zero_is_none() {
        let (c, sta) = setup();
        let placement = MonitorPlacement::at_long_path_ends(&c, &sta, 0.0);
        assert_eq!(placement.count(), 0);
        assert_eq!(placement, MonitorPlacement::none(&c));
    }

    #[test]
    fn tiny_positive_fraction_places_at_least_one() {
        let (c, sta) = setup();
        let placement = MonitorPlacement::at_long_path_ends(&c, &sta, 0.01);
        assert_eq!(placement.count(), 1);
    }

    #[test]
    fn out_of_range_index_is_unmonitored() {
        let (c, _) = setup();
        let p = MonitorPlacement::none(&c);
        assert!(!p.is_monitored(999));
    }
}
