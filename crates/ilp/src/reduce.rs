use crate::SetCover;

/// The result of preprocessing a [`SetCover`] instance.
///
/// * `forced` — sets that every optimal solution must contain (they are the
///   only cover of some element); already expressed in original indices.
/// * `instance` — the residual instance over the still-uncovered elements
///   and surviving sets (element ids re-numbered).
/// * `set_map` — maps residual set indices back to original indices.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// Sets forced into the solution (original indices).
    pub forced: Vec<usize>,
    /// The residual instance.
    pub instance: SetCover,
    /// Residual set index → original set index.
    pub set_map: Vec<usize>,
}

/// Applies classic set-cover reductions to fixpoint:
///
/// 1. **Essential columns** — an element covered by exactly one set forces
///    that set (only sound for full covering, i.e.
///    `allowed_uncovered == 0`).
/// 2. **Row domination** — if every set covering element `b` also covers
///    element `a`, then `a` is covered whenever `b` is and can be dropped
///    (full covering only).
/// 3. **Column domination** — a set that is a subset of another set never
///    helps (unit costs) and is dropped. Sound for partial covering too.
///
/// # Example
///
/// ```
/// use fastmon_ilp::{reduce, SetCover};
///
/// // element 2 is only covered by set 2, element 0 only by set 0 → both
/// // essential; set 2 also covers element 1, so the instance collapses
/// let sc = SetCover::new(3, vec![vec![0], vec![1], vec![1, 2]]);
/// let red = reduce(&sc);
/// assert_eq!(red.forced, vec![0, 2]);
/// assert_eq!(red.instance.num_elements(), 0);
/// ```
///
/// ```
/// # use fastmon_ilp::{reduce, SetCover};
/// // column domination: {0} ⊂ {0, 1} never helps
/// let sc = SetCover::new(2, vec![vec![0], vec![0, 1]]);
/// let red = reduce(&sc);
/// assert_eq!(red.forced, vec![1]);
/// ```
/// Above this family size the quadratic column-domination pass is skipped.
const COLUMN_DOMINATION_LIMIT: usize = 4_000;
/// Above this universe size the quadratic row-domination pass is skipped.
const ROW_DOMINATION_LIMIT: usize = 4_000;

#[must_use]
pub fn reduce(original: &SetCover) -> Reduction {
    let full_cover = original.allowed_uncovered() == 0;
    let mut forced: Vec<usize> = Vec::new();

    // live element / set masks over the original universe
    let mut elem_alive = vec![true; original.num_elements()];
    let mut set_alive = vec![true; original.num_sets()];

    // uncoverable elements can never constrain anything
    {
        let idx = original.covering_sets();
        for (e, sets) in idx.iter().enumerate() {
            if sets.is_empty() {
                elem_alive[e] = false;
            }
        }
    }

    let mut changed = true;
    while changed {
        changed = false;

        // 1. essential columns
        if full_cover {
            let mut cover_count = vec![0u32; original.num_elements()];
            let mut only = vec![usize::MAX; original.num_elements()];
            for (i, s) in original.sets().iter().enumerate() {
                if !set_alive[i] {
                    continue;
                }
                for &e in s {
                    let e = e as usize;
                    if elem_alive[e] {
                        cover_count[e] += 1;
                        only[e] = i;
                    }
                }
            }
            for e in 0..original.num_elements() {
                if elem_alive[e] && cover_count[e] == 1 {
                    let s = only[e];
                    if set_alive[s] {
                        forced.push(s);
                        set_alive[s] = false; // leaves the residual family
                        for &covered in original.set(s) {
                            if elem_alive[covered as usize] {
                                elem_alive[covered as usize] = false;
                                changed = true;
                            }
                        }
                    }
                }
            }
        }

        // live views for the domination passes
        let live_set = |i: usize| -> Vec<u32> {
            original
                .set(i)
                .iter()
                .copied()
                .filter(|&e| elem_alive[e as usize])
                .collect()
        };

        // 3. column domination: drop sets that are subsets of another set
        // (quadratic pass — skipped on very large families, where the
        // branch-and-bound search handles redundancy on its own)
        if original.num_sets() <= COLUMN_DOMINATION_LIMIT {
            let views: Vec<Option<Vec<u32>>> = (0..original.num_sets())
                .map(|i| set_alive[i].then(|| live_set(i)))
                .collect();
            for a in 0..original.num_sets() {
                let Some(sa) = &views[a] else { continue };
                if !set_alive[a] {
                    continue;
                }
                if sa.is_empty() {
                    set_alive[a] = false;
                    changed = true;
                    continue;
                }
                for b in 0..original.num_sets() {
                    if a == b || !set_alive[b] || !set_alive[a] {
                        continue;
                    }
                    let Some(sb) = &views[b] else { continue };
                    if sb.len() < sa.len() {
                        continue;
                    }
                    // tie-break on equal sets: keep the lower index
                    if sa.len() == sb.len() && a < b {
                        continue;
                    }
                    if is_subset(sa, sb) {
                        set_alive[a] = false;
                        changed = true;
                        break;
                    }
                }
            }
        }

        // 2. row domination (quadratic pass, size-guarded like column
        // domination)
        if full_cover && original.num_elements() <= ROW_DOMINATION_LIMIT {
            let mut idx: Vec<Vec<u32>> = vec![Vec::new(); original.num_elements()];
            for (i, s) in original.sets().iter().enumerate() {
                if !set_alive[i] {
                    continue;
                }
                for &e in s {
                    if elem_alive[e as usize] {
                        idx[e as usize].push(
                            u32::try_from(i).unwrap_or_else(|_| unreachable!("set count fits u32")),
                        );
                    }
                }
            }
            for a in 0..original.num_elements() {
                if !elem_alive[a] {
                    continue;
                }
                for b in 0..original.num_elements() {
                    if a == b || !elem_alive[b] || !elem_alive[a] {
                        continue;
                    }
                    // covering(b) ⊆ covering(a): covering b always covers a
                    if idx[b].len() <= idx[a].len()
                        && !(idx[a].len() == idx[b].len() && a < b)
                        && is_subset(&idx[b], &idx[a])
                    {
                        elem_alive[a] = false;
                        changed = true;
                        break;
                    }
                }
            }
        }
    }

    // build the residual instance with remapped element ids
    let mut elem_map = vec![u32::MAX; original.num_elements()];
    let mut next = 0u32;
    for e in 0..original.num_elements() {
        if elem_alive[e] {
            elem_map[e] = next;
            next += 1;
        }
    }
    let mut sets = Vec::new();
    let mut set_map = Vec::new();
    for (i, &alive) in set_alive.iter().enumerate() {
        if !alive {
            continue;
        }
        let remapped: Vec<u32> = original
            .set(i)
            .iter()
            .filter(|&&e| elem_alive[e as usize])
            .map(|&e| elem_map[e as usize])
            .collect();
        if !remapped.is_empty() {
            sets.push(remapped);
            set_map.push(i);
        }
    }
    forced.sort_unstable();
    forced.dedup();
    Reduction {
        forced,
        instance: SetCover::new(next as usize, sets)
            .with_allowed_uncovered(original.allowed_uncovered()),
        set_map,
    }
}

/// `a ⊆ b` for sorted slices.
fn is_subset(a: &[u32], b: &[u32]) -> bool {
    let mut j = 0usize;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn essential_set_forced_and_universe_shrinks() {
        let sc = SetCover::new(4, vec![vec![0, 1], vec![1, 2, 3], vec![0]]);
        let red = reduce(&sc);
        // elements 2 and 3 are only covered by set 1 → forced. Then set 2
        // (= {0}) is dominated by set 0 (= {0,1} with element 1 already
        // covered → {0}, equal, lower index wins), after which element 0
        // has a single cover left and set 0 becomes essential too: the
        // whole instance collapses.
        assert_eq!(red.forced, vec![0, 1]);
        assert_eq!(red.instance.num_elements(), 0);
    }

    #[test]
    fn column_domination_drops_subsets() {
        let sc = SetCover::new(3, vec![vec![0], vec![0, 1], vec![0, 1, 2]]);
        let red = reduce(&sc);
        // element 2 only in set 2 → forced, covering everything
        assert_eq!(red.forced, vec![2]);
        assert_eq!(red.instance.num_elements(), 0);
    }

    #[test]
    fn equal_sets_keep_one() {
        let sc = SetCover::new(2, vec![vec![0, 1], vec![0, 1]]);
        let red = reduce(&sc);
        // one of the twins is dropped; the survivor becomes essential
        assert_eq!(red.forced.len(), 1);
        assert_eq!(red.instance.num_sets(), 0);
    }

    #[test]
    fn partial_cover_skips_unsound_rules() {
        let sc = SetCover::new(3, vec![vec![0], vec![1], vec![2]]).with_allowed_uncovered(1);
        let red = reduce(&sc);
        // nothing may be forced: the solver might waive any single element
        assert!(red.forced.is_empty());
        assert_eq!(red.instance.num_sets(), 3);
        assert_eq!(red.instance.allowed_uncovered(), 1);
    }

    #[test]
    fn uncoverable_elements_dropped() {
        let sc = SetCover::new(3, vec![vec![0], vec![1]]);
        let red = reduce(&sc);
        assert_eq!(red.instance.num_elements(), 0); // both forced, elt 2 dropped
        assert_eq!(red.forced, vec![0, 1]);
    }

    #[test]
    fn subset_helper() {
        assert!(is_subset(&[1, 3], &[0, 1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[0, 1, 2, 3]));
        assert!(is_subset(&[], &[0]));
    }

    #[test]
    fn forced_plus_residual_solves_original() {
        let sc = SetCover::new(
            6,
            vec![vec![0, 1], vec![2], vec![2, 3], vec![4, 5], vec![5]],
        );
        let red = reduce(&sc);
        // solve residual greedily and stitch together
        let sub = crate::greedy(&red.instance);
        let mut chosen: Vec<usize> = red.forced.clone();
        chosen.extend(sub.chosen.iter().map(|&i| red.set_map[i]));
        assert!(sc.is_feasible(&chosen));
    }
}
