//! A 0-1 integer-linear-programming solver for set-covering problems.
//!
//! The paper models its two test-scheduling steps — minimum test-frequency
//! selection and minimum pattern×monitor-configuration selection — as
//! zero-one linear programs of the set-covering form
//!
//! ```text
//! minimize   Σ xᵢ
//! subject to Σ_{i ∈ S(φ)} xᵢ ≥ 1   for every fault φ
//! ```
//!
//! and solves them with a commercial tool under a timeout. This crate is the
//! open substitute: an exact branch-and-bound solver with classic
//! preprocessing reductions, a greedy heuristic (also used as the *heur.*
//! baseline standing in for the frequency-selection heuristic of the
//! authors' earlier ATS'18 work), and deadline-capped anytime behaviour —
//! when the deadline fires, the best solution found so far is returned and
//! flagged non-optimal, mirroring the paper's 1-hour ILP timeout.
//!
//! Partial covering (`cover ≥ x %` of the elements, needed for the paper's
//! Table III) is supported through
//! [`SetCover::with_allowed_uncovered`].
//!
//! # Example
//!
//! ```
//! use fastmon_ilp::{BranchBound, SetCover};
//!
//! // universe {0,1,2,3}; an optimal cover needs 2 sets
//! let instance = SetCover::new(4, vec![
//!     vec![0, 1],
//!     vec![2, 3],
//!     vec![0, 2],
//!     vec![1],
//! ]);
//! let solution = BranchBound::new().solve(&instance);
//! assert_eq!(solution.chosen.len(), 2);
//! assert!(solution.optimal);
//! ```

// Robustness gate: library code must not `unwrap`/`expect` (tests exempt);
// degenerate instances are reported through `Solution::feasible`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod branch_bound;
mod greedy;
mod instance;
mod reduce;
mod solution;

pub use branch_bound::BranchBound;
pub use greedy::greedy;
pub use instance::SetCover;
pub use reduce::{reduce, Reduction};
pub use solution::{Solution, SolveStats};
