/// A set-covering instance: a universe `0..num_elements` and a family of
/// sets, each listing the elements it covers.
///
/// `allowed_uncovered` relaxes the problem to *partial* covering: a feasible
/// solution may leave up to that many elements uncovered (used for the
/// coverage-target schedules of the paper's Table III).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetCover {
    num_elements: usize,
    sets: Vec<Vec<u32>>,
    allowed_uncovered: usize,
}

impl SetCover {
    /// Creates an instance. Element ids inside each set are deduplicated and
    /// sorted; out-of-range ids are rejected.
    ///
    /// # Panics
    ///
    /// Panics if a set references an element `>= num_elements`.
    #[must_use]
    pub fn new(num_elements: usize, sets: Vec<Vec<u32>>) -> Self {
        let mut sets = sets;
        for s in &mut sets {
            s.sort_unstable();
            s.dedup();
            if let Some(&max) = s.last() {
                assert!(
                    (max as usize) < num_elements,
                    "set references element {max} outside the universe of {num_elements}"
                );
            }
        }
        SetCover {
            num_elements,
            sets,
            allowed_uncovered: 0,
        }
    }

    /// Returns a copy that only requires covering all but
    /// `allowed_uncovered` elements.
    #[must_use]
    pub fn with_allowed_uncovered(mut self, allowed_uncovered: usize) -> Self {
        self.allowed_uncovered = allowed_uncovered;
        self
    }

    /// Size of the universe.
    #[must_use]
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Number of sets in the family.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// The elements covered by set `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn set(&self, i: usize) -> &[u32] {
        &self.sets[i]
    }

    /// All sets.
    #[must_use]
    pub fn sets(&self) -> &[Vec<u32>] {
        &self.sets
    }

    /// How many elements a solution may leave uncovered.
    #[must_use]
    pub fn allowed_uncovered(&self) -> usize {
        self.allowed_uncovered
    }

    /// The inverted index: for every element, the sets covering it.
    #[must_use]
    pub fn covering_sets(&self) -> Vec<Vec<u32>> {
        let mut by_element: Vec<Vec<u32>> = vec![Vec::new(); self.num_elements];
        for (i, s) in self.sets.iter().enumerate() {
            for &e in s {
                by_element[e as usize]
                    .push(u32::try_from(i).unwrap_or_else(|_| unreachable!("set count fits u32")));
            }
        }
        by_element
    }

    /// Returns `true` when the chosen sets cover enough of the universe:
    /// at most `allowed_uncovered` *coverable* elements may remain
    /// uncovered. Elements that appear in no set at all are impossible to
    /// cover and are excluded from the count (the schedule optimizer never
    /// produces them — every target fault has at least one detecting
    /// candidate).
    #[must_use]
    pub fn is_feasible(&self, chosen: &[usize]) -> bool {
        let mut covered = vec![false; self.num_elements];
        for &i in chosen {
            for &e in &self.sets[i] {
                covered[e as usize] = true;
            }
        }
        let mut coverable = vec![false; self.num_elements];
        for s in &self.sets {
            for &e in s {
                coverable[e as usize] = true;
            }
        }
        let uncovered = covered
            .iter()
            .zip(&coverable)
            .filter(|&(&c, &able)| able && !c)
            .count();
        uncovered <= self.allowed_uncovered
    }

    /// The number of elements that no set covers at all (these are
    /// impossible to cover and count against `allowed_uncovered`).
    #[must_use]
    pub fn uncoverable(&self) -> usize {
        let mut covered = vec![false; self.num_elements];
        for s in &self.sets {
            for &e in s {
                covered[e as usize] = true;
            }
        }
        covered.iter().filter(|&&c| !c).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_sets() {
        let sc = SetCover::new(5, vec![vec![3, 1, 3, 0]]);
        assert_eq!(sc.set(0), &[0, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "outside the universe")]
    fn out_of_range_rejected() {
        let _ = SetCover::new(3, vec![vec![5]]);
    }

    #[test]
    fn feasibility() {
        let sc = SetCover::new(3, vec![vec![0, 1], vec![2]]);
        assert!(sc.is_feasible(&[0, 1]));
        assert!(!sc.is_feasible(&[0]));
        assert!(sc.clone().with_allowed_uncovered(1).is_feasible(&[0]));
    }

    #[test]
    fn covering_sets_inverted_index() {
        let sc = SetCover::new(3, vec![vec![0, 1], vec![1, 2]]);
        let idx = sc.covering_sets();
        assert_eq!(idx[0], vec![0]);
        assert_eq!(idx[1], vec![0, 1]);
        assert_eq!(idx[2], vec![1]);
    }

    #[test]
    fn uncoverable_count() {
        let sc = SetCover::new(4, vec![vec![0], vec![2]]);
        assert_eq!(sc.uncoverable(), 2);
    }
}
