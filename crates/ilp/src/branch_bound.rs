use std::time::{Duration, Instant};

use crate::{greedy, reduce, SetCover, Solution, SolveStats};

/// Exact 0-1 set-cover solver: preprocessing reductions plus depth-first
/// branch-and-bound with a greedy incumbent.
///
/// Branching follows the standard scheme: pick the uncovered element with
/// the fewest remaining covering sets and branch on which of them (or, for
/// partial covering, a waiver) satisfies it. Pruning uses the density bound
/// `⌈uncovered / max set size⌉`.
///
/// The solver is *anytime*: when the [`deadline`](Self::with_deadline)
/// expires, the best incumbent is returned with `optimal = false` — the
/// same contract as the paper's 1-hour commercial-ILP timeout.
///
/// # Example
///
/// ```
/// use fastmon_ilp::{BranchBound, SetCover};
/// use std::time::Duration;
///
/// let sc = SetCover::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]);
/// let sol = BranchBound::new().with_deadline(Duration::from_secs(5)).solve(&sc);
/// assert_eq!(sol.objective(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BranchBound {
    deadline: Option<Duration>,
    cancel: Option<fastmon_obs::CancelToken>,
    reductions: bool,
}

impl BranchBound {
    /// Creates a solver with no deadline and reductions enabled.
    #[must_use]
    pub fn new() -> Self {
        BranchBound {
            deadline: None,
            cancel: None,
            reductions: true,
        }
    }

    /// Caps the solve at `deadline`; on expiry the best incumbent is
    /// returned with `optimal = false`.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cooperative cancellation token, checked at the same
    /// cadence as the deadline; a cancelled solve returns the best
    /// incumbent with `optimal = false` (the anytime contract).
    #[must_use]
    pub fn with_cancel(mut self, cancel: fastmon_obs::CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Disables preprocessing reductions (mainly for testing the raw
    /// search).
    #[must_use]
    pub fn without_reductions(mut self) -> Self {
        self.reductions = false;
        self
    }

    /// Solves the instance to proven optimality (unless the deadline
    /// fires).
    #[must_use]
    pub fn solve(&self, instance: &SetCover) -> Solution {
        let _span = fastmon_obs::span!("ilp_solve");
        let start = Instant::now();
        let (forced, residual, set_map, fixed) = if self.reductions {
            let red = reduce(instance);
            let n = red.forced.len();
            (red.forced, red.instance, red.set_map, n)
        } else {
            (
                Vec::new(),
                instance.clone(),
                (0..instance.num_sets()).collect(),
                0,
            )
        };

        // Panic isolation: a panicking search (e.g. an injected `ilp_node`
        // panic exercising this very path) is contained and degraded to
        // the greedy incumbent instead of unwinding through the flow.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut search = Search::new(&residual, start, self.deadline, self.cancel.as_ref());
            search.run();
            (
                search.best,
                search.nodes,
                search.bounds_pruned,
                search.deadline_hit,
            )
        }));
        let (best, nodes, bounds_pruned, interrupted) = match outcome {
            Ok(result) => result,
            Err(_) => {
                eprintln!(
                    "warning: ilp branch-and-bound panicked (contained); \
                     falling back to the greedy incumbent"
                );
                (greedy(&residual).chosen, 0, 0, true)
            }
        };

        let mut chosen: Vec<usize> = forced;
        chosen.extend(best.iter().map(|&i| set_map[i]));
        chosen.sort_unstable();
        chosen.dedup();
        // deadline-capped incumbents often carry slack; proven-optimal
        // solutions are minimal already, so this is a no-op for them
        crate::greedy::eliminate_redundant(instance, &mut chosen);
        let feasible = instance.uncoverable() <= instance.allowed_uncovered();
        Solution {
            chosen,
            optimal: !interrupted,
            feasible,
            stats: SolveStats {
                nodes,
                fixed_by_reduction: fixed,
                bounds_pruned,
                elapsed: start.elapsed(),
                deadline_hit: interrupted,
            },
        }
    }
}

impl Default for BranchBound {
    fn default() -> Self {
        BranchBound::new()
    }
}

/// Mutable DFS state.
struct Search<'a> {
    instance: &'a SetCover,
    covering: Vec<Vec<u32>>,
    cover_count: Vec<u32>,
    waived: Vec<bool>,
    uncovered: usize,
    waivers_left: usize,
    max_set_len: usize,
    chosen: Vec<usize>,
    best: Vec<usize>,
    have_best: bool,
    nodes: u64,
    bounds_pruned: u64,
    start: Instant,
    deadline: Option<Duration>,
    cancel: Option<&'a fastmon_obs::CancelToken>,
    deadline_hit: bool,
}

impl<'a> Search<'a> {
    fn new(
        instance: &'a SetCover,
        start: Instant,
        deadline: Option<Duration>,
        cancel: Option<&'a fastmon_obs::CancelToken>,
    ) -> Self {
        let covering = instance.covering_sets();
        // uncoverable elements were removed by `reduce`; be safe anyway
        let uncovered = covering.iter().filter(|c| !c.is_empty()).count();
        let seed = greedy(instance);
        Search {
            instance,
            covering,
            cover_count: vec![0; instance.num_elements()],
            waived: vec![false; instance.num_elements()],
            uncovered,
            waivers_left: instance.allowed_uncovered(),
            max_set_len: instance.sets().iter().map(Vec::len).max().unwrap_or(1),
            chosen: Vec::new(),
            best: seed.chosen,
            have_best: true,
            nodes: 0,
            bounds_pruned: 0,
            start,
            deadline,
            cancel,
            deadline_hit: false,
        }
    }

    fn run(&mut self) {
        if self.uncovered <= self.waivers_left {
            // nothing to do — empty cover is feasible
            self.best.clear();
            return;
        }
        // a deadline that expired (or a token already cancelled) before
        // the search even starts must be honoured on small instances too,
        // where the periodic in-search check would never fire
        if let Some(d) = self.deadline {
            if self.start.elapsed() > d {
                self.deadline_hit = true;
                return;
            }
        }
        if self.cancel.is_some_and(|t| t.is_cancelled()) {
            self.deadline_hit = true;
            return;
        }
        self.dfs();
    }

    fn out_of_time(&mut self) -> bool {
        if self.deadline_hit {
            return true;
        }
        if self.nodes.is_multiple_of(1024) {
            if let Some(d) = self.deadline {
                if self.start.elapsed() > d {
                    self.deadline_hit = true;
                }
            }
            if self.cancel.is_some_and(|t| t.is_cancelled()) {
                self.deadline_hit = true;
            }
        }
        self.deadline_hit
    }

    fn dfs(&mut self) {
        self.nodes += 1;
        if self.out_of_time() {
            return;
        }
        // Injected node failure: degrade to the anytime incumbent, the
        // same graceful path a deadline expiry takes (a panic-action
        // injection instead unwinds into `solve`'s containment).
        if fastmon_obs::failpoints::fire("ilp_node").is_err() {
            self.deadline_hit = true;
            return;
        }
        let must_cover = self.uncovered.saturating_sub(self.waivers_left);
        if must_cover == 0 {
            if !self.have_best || self.chosen.len() < self.best.len() {
                self.best = self.chosen.clone();
                self.have_best = true;
            }
            return;
        }
        // density lower bound
        let bound = self.chosen.len() + must_cover.div_ceil(self.max_set_len);
        if self.have_best && bound >= self.best.len() {
            self.bounds_pruned += 1;
            return;
        }
        // disjoint-rows lower bound (stronger, costlier — shallow depths
        // only): elements whose covering-set families are pairwise disjoint
        // each demand their own set, minus what waivers can absorb
        if self.have_best && self.chosen.len() < 6 {
            let disjoint = self.disjoint_rows();
            let bound = self.chosen.len() + disjoint.saturating_sub(self.waivers_left);
            if bound >= self.best.len() {
                self.bounds_pruned += 1;
                return;
            }
        }

        // branch element: uncovered, minimal number of covering sets
        let mut pick = usize::MAX;
        let mut pick_arity = usize::MAX;
        for e in 0..self.instance.num_elements() {
            if self.cover_count[e] == 0 && !self.waived[e] && !self.covering[e].is_empty() {
                let arity = self.covering[e].len();
                if arity < pick_arity {
                    pick_arity = arity;
                    pick = e;
                    if arity == 1 {
                        break;
                    }
                }
            }
        }
        if pick == usize::MAX {
            return; // inconsistent state; nothing uncovered found
        }

        // order candidate sets by current gain, descending
        let mut candidates: Vec<(usize, usize)> = self.covering[pick]
            .iter()
            .map(|&s| {
                let s = s as usize;
                let gain = self
                    .instance
                    .set(s)
                    .iter()
                    .filter(|&&e| self.cover_count[e as usize] == 0 && !self.waived[e as usize])
                    .count();
                (gain, s)
            })
            .collect();
        candidates.sort_unstable_by(|a, b| b.cmp(a));

        for (_, s) in candidates {
            self.choose(s);
            self.dfs();
            self.unchoose(s);
            if self.deadline_hit {
                return;
            }
        }

        // waiver branch (partial covering)
        if self.waivers_left > 0 {
            self.waived[pick] = true;
            self.waivers_left -= 1;
            self.uncovered -= 1;
            self.dfs();
            self.uncovered += 1;
            self.waivers_left += 1;
            self.waived[pick] = false;
        }
    }

    /// Greedy count of uncovered elements whose covering-set families are
    /// pairwise disjoint — every one of them requires a distinct set.
    fn disjoint_rows(&mut self) -> usize {
        let mut used = vec![false; self.instance.num_sets()];
        let mut count = 0usize;
        for e in 0..self.instance.num_elements() {
            if self.cover_count[e] > 0 || self.waived[e] || self.covering[e].is_empty() {
                continue;
            }
            if self.covering[e].iter().any(|&s| used[s as usize]) {
                continue;
            }
            for &s in &self.covering[e] {
                used[s as usize] = true;
            }
            count += 1;
        }
        count
    }

    fn choose(&mut self, s: usize) {
        self.chosen.push(s);
        for &e in self.instance.set(s) {
            let e = e as usize;
            if self.cover_count[e] == 0 && !self.waived[e] {
                self.uncovered -= 1;
            }
            self.cover_count[e] += 1;
        }
    }

    fn unchoose(&mut self, s: usize) {
        let popped = self.chosen.pop();
        debug_assert_eq!(popped, Some(s));
        for &e in self.instance.set(s) {
            let e = e as usize;
            self.cover_count[e] -= 1;
            if self.cover_count[e] == 0 && !self.waived[e] {
                self.uncovered += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn beats_greedy_on_staircase() {
        // greedy (even with redundancy elimination) needs 3; optimum is 2
        let sc = SetCover::new(
            8,
            vec![
                vec![2, 3, 4, 5],
                vec![0, 1, 2],
                vec![5, 6, 7],
                vec![0, 1, 2, 3],
                vec![4, 5, 6, 7],
            ],
        );
        let exact = BranchBound::new().solve(&sc);
        assert_eq!(exact.objective(), 2);
        assert!(exact.optimal);
        assert!(sc.is_feasible(&exact.chosen));
        assert_eq!(greedy(&sc).objective(), 3);
    }

    #[test]
    fn partial_cover_uses_waivers() {
        // covering all 3 needs 3 sets, but one waiver brings it to 2
        let sc = SetCover::new(3, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(BranchBound::new().solve(&sc).objective(), 3);
        let relaxed = sc.with_allowed_uncovered(1);
        let sol = BranchBound::new().solve(&relaxed);
        assert_eq!(sol.objective(), 2);
        assert!(relaxed.is_feasible(&sol.chosen));
    }

    #[test]
    fn empty_universe_needs_nothing() {
        let sc = SetCover::new(0, vec![]);
        let sol = BranchBound::new().solve(&sc);
        assert!(sol.chosen.is_empty());
        assert!(sol.optimal);
        assert!(sol.feasible);
    }

    #[test]
    fn infeasible_instance_flagged_not_looped() {
        // element 2 appears in no set: the solve must terminate and flag
        // the result infeasible instead of searching forever
        let sc = SetCover::new(3, vec![vec![0], vec![1]]);
        let sol = BranchBound::new().solve(&sc);
        assert!(!sol.feasible);
        assert!(sc.uncoverable() == 1);
        // one waiver makes it feasible again
        let relaxed = SetCover::new(3, vec![vec![0], vec![1]]).with_allowed_uncovered(1);
        assert!(BranchBound::new().solve(&relaxed).feasible);
    }

    #[test]
    fn single_set_covers_all() {
        let sc = SetCover::new(4, vec![vec![0, 1, 2, 3], vec![0], vec![1, 2]]);
        let sol = BranchBound::new().solve(&sc);
        assert_eq!(sol.chosen, vec![0]);
    }

    #[test]
    fn without_reductions_same_objective() {
        let sc = SetCover::new(
            5,
            vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![0, 4]],
        );
        let a = BranchBound::new().solve(&sc);
        let b = BranchBound::new().without_reductions().solve(&sc);
        assert_eq!(a.objective(), b.objective());
        assert!(sc.is_feasible(&a.chosen) && sc.is_feasible(&b.chosen));
        // odd cycle of pair-sets over 5 elements needs 3 sets
        assert_eq!(a.objective(), 3);
    }

    #[test]
    fn randomized_exactness_vs_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..30 {
            let n = rng.gen_range(3..9usize);
            let num_sets = rng.gen_range(3..8usize);
            let sets: Vec<Vec<u32>> = (0..num_sets)
                .map(|_| (0..n as u32).filter(|_| rng.gen_bool(0.4)).collect())
                .collect();
            let sc = SetCover::new(n, sets);
            let exact = BranchBound::new().solve(&sc);
            // brute force over all subsets
            let mut best = usize::MAX;
            for mask in 0u32..(1 << num_sets) {
                let chosen: Vec<usize> = (0..num_sets).filter(|&i| mask & (1 << i) != 0).collect();
                if sc.is_feasible(&chosen) {
                    best = best.min(chosen.len());
                }
            }
            // account for uncoverable elements: brute force always finds a
            // "cover" of the coverable part because is_feasible tolerates
            // only allowed_uncovered — skip infeasible universes
            if best == usize::MAX {
                continue;
            }
            assert_eq!(exact.objective(), best, "instance {sc:?}");
            assert!(sc.is_feasible(&exact.chosen));
        }
    }

    #[test]
    fn randomized_partial_cover_exactness() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for _ in 0..20 {
            let n = rng.gen_range(4..8usize);
            let num_sets = rng.gen_range(3..7usize);
            let sets: Vec<Vec<u32>> = (0..num_sets)
                .map(|_| (0..n as u32).filter(|_| rng.gen_bool(0.35)).collect())
                .collect();
            let allowed = rng.gen_range(0..3usize);
            let sc = SetCover::new(n, sets).with_allowed_uncovered(allowed);
            let exact = BranchBound::new().solve(&sc);
            let mut best = usize::MAX;
            for mask in 0u32..(1 << num_sets) {
                let chosen: Vec<usize> = (0..num_sets).filter(|&i| mask & (1 << i) != 0).collect();
                if sc.is_feasible(&chosen) {
                    best = best.min(chosen.len());
                }
            }
            if best == usize::MAX {
                continue;
            }
            assert_eq!(exact.objective(), best, "instance {sc:?}");
        }
    }

    #[test]
    fn zero_deadline_on_small_instance_returns_greedy_incumbent() {
        // the periodic node-count deadline check never fires on instances
        // this small; the pre-search check must catch the expired deadline
        let sc = SetCover::new(
            8,
            vec![
                vec![2, 3, 4, 5],
                vec![0, 1, 2],
                vec![5, 6, 7],
                vec![0, 1, 2, 3],
                vec![4, 5, 6, 7],
            ],
        );
        let sol = BranchBound::new()
            .without_reductions()
            .with_deadline(Duration::from_millis(0))
            .solve(&sc);
        assert!(sol.stats.deadline_hit);
        assert!(!sol.optimal);
        assert!(sc.is_feasible(&sol.chosen), "greedy incumbent is returned");
    }

    #[test]
    fn deadline_returns_incumbent() {
        // large random instance; a zero deadline must still return the
        // greedy incumbent, marked non-optimal
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 400usize;
        let sets: Vec<Vec<u32>> = (0..200)
            .map(|_| (0..n as u32).filter(|_| rng.gen_bool(0.03)).collect())
            .collect();
        let sc = SetCover::new(n, sets);
        let sol = BranchBound::new()
            .with_deadline(Duration::from_millis(0))
            .solve(&sc);
        assert!(sc.is_feasible(&sol.chosen) || sc.uncoverable() > 0);
        // can't prove optimality in zero time unless reductions solved it
        if sol.stats.deadline_hit {
            assert!(!sol.optimal);
        }
    }

    #[test]
    fn cancelled_token_returns_incumbent() {
        let token = fastmon_obs::CancelToken::new();
        token.cancel();
        let sc = SetCover::new(
            8,
            vec![
                vec![2, 3, 4, 5],
                vec![0, 1, 2],
                vec![5, 6, 7],
                vec![0, 1, 2, 3],
                vec![4, 5, 6, 7],
            ],
        );
        let sol = BranchBound::new()
            .without_reductions()
            .with_cancel(token)
            .solve(&sc);
        assert!(sol.stats.deadline_hit, "cancel takes the anytime path");
        assert!(!sol.optimal);
        assert!(sc.is_feasible(&sol.chosen), "greedy incumbent is returned");
    }

    #[test]
    fn never_worse_than_greedy() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..10 {
            let n = rng.gen_range(10..40usize);
            let sets: Vec<Vec<u32>> = (0..rng.gen_range(8..20))
                .map(|_| (0..n as u32).filter(|_| rng.gen_bool(0.25)).collect())
                .collect();
            let sc = SetCover::new(n, sets);
            let g = greedy(&sc);
            let e = BranchBound::new().solve(&sc);
            assert!(e.objective() <= g.objective());
        }
    }
}
