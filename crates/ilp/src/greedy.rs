use std::time::Instant;

use crate::{SetCover, Solution, SolveStats};

/// The classic greedy set-cover heuristic: repeatedly pick the set covering
/// the most still-uncovered elements, until at most
/// [`allowed_uncovered`](SetCover::allowed_uncovered) elements remain.
///
/// Ties are broken towards the lower set index, making the result
/// deterministic. This is also the *heur.* baseline of the benchmark
/// tables (standing in for the heuristic frequency selection of the
/// authors' earlier work).
///
/// # Example
///
/// ```
/// use fastmon_ilp::{greedy, SetCover};
///
/// let sc = SetCover::new(4, vec![vec![0, 1, 2], vec![2, 3], vec![3]]);
/// let sol = greedy(&sc);
/// assert_eq!(sol.chosen, vec![0, 1]);
/// assert!(!sol.optimal); // greedy never claims optimality
/// ```
#[must_use]
pub fn greedy(instance: &SetCover) -> Solution {
    let start = Instant::now();
    let n = instance.num_elements();
    let mut covered = vec![false; n];
    let mut uncovered = n;
    let mut chosen = Vec::new();
    // uncoverable elements can never be covered; the slack budget applies
    // on top of them
    let target = instance.allowed_uncovered() + instance.uncoverable();

    // cached "new coverage" per set, lazily refreshed (standard lazy-greedy)
    let mut gain: Vec<usize> = instance.sets().iter().map(Vec::len).collect();
    let mut used = vec![false; instance.num_sets()];

    while uncovered > target {
        // find the set with the best *fresh* gain
        let mut best: Option<(usize, usize)> = None; // (gain, index)
        for i in 0..instance.num_sets() {
            if used[i] || gain[i] == 0 {
                continue;
            }
            // refresh the cached gain before trusting it
            let fresh = instance
                .set(i)
                .iter()
                .filter(|&&e| !covered[e as usize])
                .count();
            gain[i] = fresh;
            if fresh > 0 {
                match best {
                    Some((g, _)) if g >= fresh => {}
                    _ => best = Some((fresh, i)),
                }
            }
        }
        let Some((_, pick)) = best else {
            break; // nothing can cover the rest
        };
        used[pick] = true;
        chosen.push(pick);
        for &e in instance.set(pick) {
            if !covered[e as usize] {
                covered[e as usize] = true;
                uncovered -= 1;
            }
        }
    }

    eliminate_redundant(instance, &mut chosen);
    chosen.sort_unstable();
    let feasible = instance.uncoverable() <= instance.allowed_uncovered();
    Solution {
        chosen,
        optimal: false,
        feasible,
        stats: SolveStats {
            elapsed: start.elapsed(),
            ..SolveStats::default()
        },
    }
}

/// Drops chosen sets that are not needed for feasibility (every covered
/// element stays covered, or the waiver budget absorbs it). Processes the
/// candidates from smallest coverage to largest, which tends to free the
/// most sets.
pub(crate) fn eliminate_redundant(instance: &SetCover, chosen: &mut Vec<usize>) {
    let n = instance.num_elements();
    let mut cover_count = vec![0u32; n];
    for &s in chosen.iter() {
        for &e in instance.set(s) {
            cover_count[e as usize] += 1;
        }
    }
    let covered = cover_count.iter().filter(|&&c| c > 0).count();
    let coverable = {
        let mut any = vec![false; n];
        for s in instance.sets() {
            for &e in s {
                any[e as usize] = true;
            }
        }
        any.iter().filter(|&&a| a).count()
    };
    let mut slack = instance
        .allowed_uncovered()
        .saturating_sub(coverable - covered);

    let mut order: Vec<usize> = (0..chosen.len()).collect();
    order.sort_by_key(|&i| instance.set(chosen[i]).len());
    let mut removed = vec![false; chosen.len()];
    for i in order {
        let s = chosen[i];
        let unique = instance
            .set(s)
            .iter()
            .filter(|&&e| cover_count[e as usize] == 1)
            .count();
        if unique <= slack {
            removed[i] = true;
            slack -= unique;
            for &e in instance.set(s) {
                cover_count[e as usize] -= 1;
            }
        }
    }
    let mut i = 0;
    chosen.retain(|_| {
        let keep = !removed[i];
        i += 1;
        keep
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_everything_when_possible() {
        let sc = SetCover::new(6, vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![0, 2, 4]]);
        let sol = greedy(&sc);
        assert!(sc.is_feasible(&sol.chosen));
    }

    #[test]
    fn redundancy_elimination_fixes_the_classic_trap() {
        // greedy takes the big set 0 first, then needs 1 and 2 anyway —
        // the redundancy post-pass drops set 0 again
        let sc = SetCover::new(6, vec![vec![0, 1, 2, 3], vec![0, 1, 4], vec![2, 3, 5]]);
        let sol = greedy(&sc);
        assert!(sc.is_feasible(&sol.chosen));
        assert_eq!(sol.chosen, vec![1, 2]);
    }

    #[test]
    fn greedy_can_still_be_suboptimal() {
        // staircase instance where the greedy choice is irreversibly bad:
        // optimal is the two disjoint halves {0..3}, {4..7}; greedy starts
        // with the middle set {2..5} and needs two more, none redundant
        let sc = SetCover::new(
            8,
            vec![
                vec![2, 3, 4, 5],
                vec![0, 1, 2],
                vec![5, 6, 7],
                vec![0, 1, 2, 3],
                vec![4, 5, 6, 7],
            ],
        );
        let sol = greedy(&sc);
        assert!(sc.is_feasible(&sol.chosen));
        assert_eq!(sol.chosen.len(), 3, "{:?}", sol.chosen);
        assert_eq!(crate::BranchBound::new().solve(&sc).objective(), 2);
    }

    #[test]
    fn partial_cover_stops_early() {
        let sc = SetCover::new(4, vec![vec![0, 1, 2], vec![3]]).with_allowed_uncovered(1);
        let sol = greedy(&sc);
        assert_eq!(sol.chosen, vec![0]);
    }

    #[test]
    fn uncoverable_elements_tolerated() {
        // element 3 is in no set: greedy must still terminate
        let sc = SetCover::new(4, vec![vec![0, 1], vec![2]]);
        let sol = greedy(&sc);
        assert_eq!(sol.chosen, vec![0, 1]);
        assert!(!sol.feasible, "an unwaived uncoverable element is reported");
    }

    #[test]
    fn uncoverable_elements_feasible_with_waivers() {
        let sc = SetCover::new(4, vec![vec![0, 1], vec![2]]).with_allowed_uncovered(1);
        let sol = greedy(&sc);
        assert!(sol.feasible, "the waiver budget absorbs the orphan element");
    }

    #[test]
    fn empty_instance() {
        let sc = SetCover::new(0, vec![]);
        assert!(greedy(&sc).chosen.is_empty());
    }

    #[test]
    fn elimination_respects_waiver_budget() {
        // cover {0,1,2} with one waiver: sets {0,1} and {2}; the {2} set
        // covers a single element which the waiver can absorb
        let sc = SetCover::new(3, vec![vec![0, 1], vec![2]]).with_allowed_uncovered(1);
        let mut chosen = vec![0usize, 1];
        eliminate_redundant(&sc, &mut chosen);
        assert_eq!(chosen, vec![0], "the singleton set is waived away");
        assert!(sc.is_feasible(&chosen));

        // without slack nothing may be dropped
        let tight = SetCover::new(3, vec![vec![0, 1], vec![2]]);
        let mut chosen = vec![0usize, 1];
        eliminate_redundant(&tight, &mut chosen);
        assert_eq!(chosen, vec![0, 1]);
    }

    #[test]
    fn elimination_never_breaks_feasibility() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for _ in 0..30 {
            let n = rng.gen_range(4..20usize);
            let sets: Vec<Vec<u32>> = (0..rng.gen_range(4..12))
                .map(|_| (0..n as u32).filter(|_| rng.gen_bool(0.3)).collect())
                .collect();
            let allowed = rng.gen_range(0..3usize);
            let sc = SetCover::new(n, sets).with_allowed_uncovered(allowed);
            // start from "everything chosen" — trivially feasible
            let mut chosen: Vec<usize> = (0..sc.num_sets()).collect();
            let feasible_before = sc.is_feasible(&chosen);
            eliminate_redundant(&sc, &mut chosen);
            assert_eq!(sc.is_feasible(&chosen), feasible_before);
        }
    }
}
