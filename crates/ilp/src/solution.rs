use std::time::Duration;

/// The outcome of a set-cover solve.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Solution {
    /// Indices of the chosen sets, in ascending order.
    pub chosen: Vec<usize>,
    /// `true` if the solver proved optimality, `false` for heuristic or
    /// deadline-capped results.
    pub optimal: bool,
    /// `true` if the chosen sets satisfy the covering constraint (at most
    /// [`allowed_uncovered`](crate::SetCover::allowed_uncovered) coverable
    /// elements left uncovered *and* no impossible-to-cover element exceeds
    /// that budget). `false` means the instance itself is infeasible — some
    /// elements appear in no set and the waiver budget cannot absorb them.
    pub feasible: bool,
    /// Solver statistics.
    pub stats: SolveStats,
}

impl Solution {
    /// Number of chosen sets (the objective value).
    #[must_use]
    pub fn objective(&self) -> usize {
        self.chosen.len()
    }
}

/// Statistics of a solve.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SolveStats {
    /// Branch-and-bound nodes explored (0 for the greedy heuristic).
    pub nodes: u64,
    /// Sets fixed by preprocessing reductions.
    pub fixed_by_reduction: usize,
    /// Subtrees cut by the density/disjoint-rows lower bounds.
    pub bounds_pruned: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// `true` if the deadline interrupted the search.
    pub deadline_hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_counts_sets() {
        let s = Solution {
            chosen: vec![1, 4, 7],
            optimal: true,
            feasible: true,
            stats: SolveStats::default(),
        };
        assert_eq!(s.objective(), 3);
    }
}
