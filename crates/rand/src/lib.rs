//! Offline in-tree shim for the subset of the `rand` 0.8 API the fastmon
//! workspace uses.
//!
//! The build environment has no network access and no vendored registry, so
//! the real `rand` crate cannot be resolved. This crate provides the same
//! trait names and method signatures (`RngCore`, `Rng`, `SeedableRng`,
//! `SliceRandom` and the `prelude`) backed by straightforward, documented
//! derivations. Streams are deterministic and stable across platforms, but
//! they are **not bit-compatible** with upstream `rand`; all in-repo
//! consumers only rely on determinism, never on specific stream values.

use std::ops::{Range, RangeInclusive};

/// The low-level entropy source: a generator of raw 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full-width seed with SplitMix64 (the
    /// same expansion `rand_core` 0.6 uses) and constructs the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used only for seed expansion.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be drawn uniformly from the full value range (the shim's
/// stand-in for `Distribution<T> for Standard`).
pub trait StandardSample: Sized {
    /// One uniform draw.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// `(next_u64 >> 11) * 2^-53` construction).
    #[allow(clippy::cast_precision_loss)]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[allow(clippy::cast_precision_loss)]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform-over-an-interval sampler (the shim's stand-in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// A uniform draw from `[start, end)` if `inclusive` is false, from
    /// `[start, end]` otherwise.
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self;
}

/// Unbiased uniform integer in `[0, width)` by rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    if width.is_power_of_two() {
        return rng.next_u64() & (width - 1);
    }
    // largest multiple of `width` that fits in u64
    let zone = u64::MAX - (u64::MAX % width + 1) % width;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % width;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss,
                clippy::cast_possible_wrap,
                clippy::cast_lossless
            )]
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                let width = (end as i128 - start as i128
                    + i128::from(inclusive)) as u128;
                assert!(width > 0, "cannot sample empty range");
                if width > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, width as u64) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_interval<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self, _: bool) -> Self {
        assert!(start < end, "cannot sample empty range");
        let u: f64 = StandardSample::sample(rng);
        start + u * (end - start)
    }
}

impl SampleUniform for f32 {
    fn sample_interval<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self, _: bool) -> Self {
        assert!(start < end, "cannot sample empty range");
        let u: f32 = StandardSample::sample(rng);
        start + u * (end - start)
    }
}

/// Ranges that can produce a uniform sample (the shim's stand-in for
/// `SampleRange<T>`). The two blanket impls keep type inference identical
/// to upstream rand: the range's item type unifies with the result type.
pub trait SampleRange<T> {
    /// One uniform draw from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, *self.start(), *self.end(), true)
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform draw over the whole value range of `T` (`[0, 1)` for
    /// floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        let u: f64 = StandardSample::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice shuffling, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            #[allow(clippy::cast_possible_truncation)]
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

pub mod seq {
    //! Sequence helpers (`SliceRandom`).
    pub use crate::SliceRandom;
}

pub mod prelude {
    //! The usual glob-import surface: `use rand::prelude::*;`.
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom, StandardSample};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial deterministic generator for testing the trait layer.
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = XorShift(42);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.gen_range(0..100);
            assert!(w < 100);
            let x: f64 = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&x));
            let y: usize = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = XorShift(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut rng = XorShift(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = XorShift(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never stay in place");
    }

    #[test]
    fn uniform_below_covers_small_width() {
        let mut rng = XorShift(11);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[uniform_below(&mut rng, 7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
