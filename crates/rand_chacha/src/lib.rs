//! Offline in-tree shim for `rand_chacha` 0.3: a genuine ChaCha8 stream
//! cipher used as a deterministic random-number generator.
//!
//! Only [`ChaCha8Rng`] is provided (the single type the fastmon workspace
//! uses). The keystream is the RFC 8439 block function reduced to 8 rounds;
//! output words are consumed in block order, little-endian, which makes the
//! stream deterministic and platform-independent. It is **not guaranteed**
//! to be bit-compatible with upstream `rand_chacha` (word consumption order
//! differs); in-repo consumers rely on determinism only.

use rand::{RngCore, SeedableRng};

/// The number of ChaCha double-rounds (8 rounds total → 4 double-rounds).
const DOUBLE_ROUNDS: usize = 4;

/// A deterministic ChaCha8-based random-number generator.
///
/// # Example
///
/// ```
/// use rand::prelude::*;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut a = ChaCha8Rng::seed_from_u64(7);
/// let mut b = ChaCha8Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 256-bit key, as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// The current keystream block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 = exhausted.
    cursor: usize,
}

impl ChaCha8Rng {
    #[inline]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    /// Produces the keystream block for the current counter into `block`.
    fn refill(&mut self) {
        // "expand 32-byte k" constants, key, counter, zero nonce
        #[allow(clippy::cast_possible_truncation)]
        let counter_lo = self.counter as u32;
        let counter_hi = (self.counter >> 32) as u32;
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter_lo,
            counter_hi,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..DOUBLE_ROUNDS {
            // column round
            Self::quarter_round(&mut state, 0, 4, 8, 12);
            Self::quarter_round(&mut state, 1, 5, 9, 13);
            Self::quarter_round(&mut state, 2, 6, 10, 14);
            Self::quarter_round(&mut state, 3, 7, 11, 15);
            // diagonal round
            Self::quarter_round(&mut state, 0, 5, 10, 15);
            Self::quarter_round(&mut state, 1, 6, 11, 12);
            Self::quarter_round(&mut state, 2, 7, 8, 13);
            Self::quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, &init) in state.iter_mut().zip(&initial) {
            *s = s.wrapping_add(init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(
                chunk
                    .try_into()
                    .unwrap_or_else(|_| unreachable!("chunks_exact(4) yields 4-byte chunks")),
            );
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.cursor + 2 > 16 {
            self.refill();
        }
        let lo = u64::from(self.block[self.cursor]);
        let hi = u64::from(self.block[self.cursor + 1]);
        self.cursor += 2;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(123);
            (0..64).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(123);
            (0..64).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(124);
            (0..64).map(|_| rng.next_u64()).collect()
        };
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn stream_looks_uniform() {
        // crude sanity: bit balance of 8k words within 2 % of half
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ones: u32 = (0..8192).map(|_| rng.next_u64().count_ones()).sum();
        let expected: i64 = 8192 * 32;
        let dev = (i64::from(ones) - expected).unsigned_abs();
        assert!(
            dev < expected.unsigned_abs() / 50,
            "bit balance off: {ones}"
        );
    }

    #[test]
    fn rng_trait_methods_work() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let v: Vec<usize> = (0..100).map(|_| rng.gen_range(0..10)).collect();
        assert!(v.iter().all(|&x| x < 10));
        // all 10 buckets hit in 100 draws (overwhelmingly likely)
        for bucket in 0..10 {
            assert!(v.contains(&bucket), "bucket {bucket} never drawn");
        }
        let p: f64 = rng.gen();
        assert!((0.0..1.0).contains(&p));
    }

    #[test]
    fn known_answer_chacha_constants() {
        // the first block for the all-zero key must differ from the second
        // and both must be stable across runs (regression anchor)
        let mut rng = ChaCha8Rng::from_seed([0; 32]);
        let w0 = rng.next_u64();
        let w1 = rng.next_u64();
        assert_ne!(w0, w1);
        let mut rng2 = ChaCha8Rng::from_seed([0; 32]);
        assert_eq!(rng2.next_u64(), w0);
    }
}
