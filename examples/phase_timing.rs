//! Internal helper: prints per-phase wall-clock times of the flow, used to
//! guide performance work on the simulator and schedulers.
//!
//! ```text
//! cargo run --release --example phase_timing
//! ```

use std::time::Instant;

use fastmon::core::{FlowConfig, HdfTestFlow, Solver};
use fastmon::netlist::generate::GeneratorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = GeneratorConfig::new("demo")
        .inputs(16)
        .outputs(8)
        .flip_flops(64)
        .gates(900)
        .depth(16)
        .generate(42)?;

    let t = Instant::now();
    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    println!("prepare:   {:>8.2?}", t.elapsed());

    let t = Instant::now();
    let patterns = flow.generate_patterns(Some(64));
    println!(
        "atpg:      {:>8.2?}  ({} patterns)",
        t.elapsed(),
        patterns.len()
    );

    let t = Instant::now();
    let analysis = flow.analyze(&patterns);
    println!(
        "analyze:   {:>8.2?}  ({} faults, {} targets)",
        t.elapsed(),
        analysis.num_faults(),
        analysis.targets.len()
    );

    let t = Instant::now();
    let schedule = flow.schedule(&analysis, Solver::Ilp);
    println!(
        "schedule:  {:>8.2?}  ({} freqs, {} apps)",
        t.elapsed(),
        schedule.num_frequencies(),
        schedule.num_applications()
    );
    Ok(())
}
