//! Bring your own design: build a netlist by hand (or parse `.bench`),
//! exchange timing through the SDF subset, and run the monitor-assisted
//! FAST flow on it.
//!
//! ```text
//! cargo run --release --example custom_circuit
//! ```

use fastmon::core::{FlowConfig, HdfTestFlow, Solver};
use fastmon::netlist::{bench, CircuitBuilder, GateKind};
use fastmon::timing::{sdf, DelayAnnotation, DelayModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- a tiny 4-bit ripple "accumulator status" design -----------------
    let mut b = CircuitBuilder::new("accu4");
    for i in 0..4 {
        b.add(format!("d{i}"), GateKind::Input, &[]);
    }
    b.add("en", GateKind::Input, &[]);
    // state register q0..q3 with next-state logic: q' = (q XOR d) AND en-chain
    let mut carry = "en".to_owned();
    for i in 0..4 {
        b.add(
            format!("x{i}"),
            GateKind::Xor,
            &[&format!("q{i}"), &format!("d{i}")],
        );
        b.add(
            format!("n{i}"),
            GateKind::And,
            &[&format!("x{i}"), carry.as_str()],
        );
        b.add(
            format!("c{i}"),
            GateKind::And,
            &[&format!("q{i}"), &format!("d{i}")],
        );
        b.add(format!("q{i}"), GateKind::Dff, &[&format!("n{i}")]);
        carry = format!("c{i}");
    }
    // status flags: zero-detect (shallow!) and overflow (deep)
    b.add("nz01", GateKind::Or, &["q0", "q1"]);
    b.add("nz23", GateKind::Or, &["q2", "q3"]);
    b.add("zero", GateKind::Nor, &["nz01", "nz23"]);
    b.add("ovf", GateKind::Buf, &[carry.as_str()]);
    b.mark_output("zero");
    b.mark_output("ovf");
    let circuit = b.finish()?;
    println!("built `{}` with {} nodes", circuit.name(), circuit.len());

    // --- round-trip through .bench and SDF --------------------------------
    let bench_text = bench::to_string(&circuit);
    let parsed = bench::parse(&bench_text, "accu4")?;
    assert_eq!(parsed.len(), circuit.len());
    println!(".bench round trip ok ({} bytes)", bench_text.len());

    let annot = DelayAnnotation::with_variation(&circuit, &DelayModel::nangate45_like(), 0.2, 3);
    let sdf_text = sdf::to_string(&circuit, &annot);
    let parsed_annot = sdf::parse(&sdf_text, &circuit, 0.2)?;
    let probe = circuit.find("x0").expect("gate exists");
    assert!((parsed_annot.rise(probe) - annot.rise(probe)).abs() < 1e-3);
    println!("SDF round trip ok ({} bytes)", sdf_text.len());

    // --- the full flow on the custom design --------------------------------
    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    let patterns = flow.generate_patterns(None);
    let analysis = flow.analyze(&patterns);
    let schedule = flow.schedule(&analysis, Solver::Ilp);
    println!(
        "flow: {} candidates, conv {} vs prop {}, schedule: {} frequencies × {} applications",
        flow.counts().candidates,
        analysis.detected_conv(),
        analysis.detected_prop(),
        schedule.num_frequencies(),
        schedule.num_applications()
    );
    for entry in &schedule.entries {
        let apps: Vec<String> = entry
            .applications
            .iter()
            .map(|(p, c)| format!("p{p}/{c}"))
            .collect();
        println!("  @ {:.1} ps: {}", entry.period, apps.join(", "));
    }
    Ok(())
}
