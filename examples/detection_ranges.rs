//! Detection ranges, glitch filtering, monitor shifting and observation-time
//! discretization — Figs. 1, 2 (d) and 5 of the paper, on a hand-built
//! circuit.
//!
//! ```text
//! cargo run --release --example detection_ranges
//! ```

use fastmon::core::{discretize, elementary_intervals};
use fastmon::faults::{FaultList, Polarity, SmallDelayFault};
use fastmon::monitor::{shifted_detection, ConfigSet, MonitorConfig, MonitorPlacement};
use fastmon::netlist::{CircuitBuilder, GateKind, PinRef};
use fastmon::sim::{SimEngine, Stimulus};
use fastmon::timing::{ClockSpec, DelayAnnotation, DelayModel, Sta};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a small circuit with one deep and one shallow path into the same
    // flip-flop: the shape that makes monitors useful
    const CHAIN: usize = 16;
    let mut b = CircuitBuilder::new("ranges");
    b.add("a", GateKind::Input, &[]);
    b.add("b", GateKind::Input, &[]);
    b.add("en", GateKind::Input, &[]);
    for i in 1..=CHAIN {
        let prev = if i == 1 {
            "a".to_owned()
        } else {
            format!("d{}", i - 1)
        };
        b.add(format!("d{i}"), GateKind::Buf, &[prev.as_str()]);
    }
    let deep = format!("d{CHAIN}");
    b.add("shallow", GateKind::Xor, &["b", "en"]);
    b.add("mix", GateKind::And, &[deep.as_str(), "shallow"]);
    b.add("q", GateKind::Dff, &["mix"]);
    b.add("po", GateKind::Buf, &[deep.as_str()]);
    b.mark_output("po");
    let circuit = b.finish()?;

    let annot = DelayAnnotation::nominal(&circuit, &DelayModel::nangate45_like());
    let sta = Sta::analyze(&circuit, &annot);
    let clock = ClockSpec::from_sta(&sta, 3.0);
    println!(
        "t_nom = {:.1} ps, FAST window [{:.1}, {:.1}) ps\n",
        clock.t_nom, clock.t_min, clock.t_nom
    );

    // δ = 6σ faults on the shallow XOR gate
    let faults = FaultList::six_sigma(&circuit, &annot);
    let shallow = circuit.find("shallow").expect("gate exists");
    let fault = SmallDelayFault::new(
        PinRef::Output(shallow),
        Polarity::SlowToRise,
        faults
            .iter()
            .find(|(_, f)| f.site.node() == shallow)
            .map(|(_, f)| f.delta)
            .expect("fault population covers the gate"),
    );
    println!("fault under study: {fault}");

    // simulate a rising launch on `b`; `a` stays 1 so the deep AND input is
    // non-controlling and the shallow transition reaches the flip-flop
    let a_in = circuit.find("a").expect("input a");
    let b_in = circuit.find("b").expect("input b");
    let stim = Stimulus::from_fn(&circuit, |id| (id == a_in, id == a_in || id == b_in));
    let engine = SimEngine::new(&circuit, &annot);
    let base = engine.simulate(&stim);
    let diffs = engine.response_diff(&base, &fault, clock.t_nom);

    println!("\nraw per-output difference intervals (XOR of waveforms):");
    let mut raw = fastmon::faults::DetectionRange::new();
    for (op, set) in diffs {
        let pseudo = circuit.observe_points()[op].is_pseudo();
        println!(
            "  at {} ({}): {set}",
            circuit.node(circuit.observe_points()[op].driver).name(),
            if pseudo {
                "flip-flop D pin"
            } else {
                "primary output"
            },
        );
        raw.push(op, set);
    }

    // Fig. 1: pessimistic pulse filtering
    let filtered = raw.filter_glitches(4.0);
    println!(
        "\nafter glitch filtering (threshold 4 ps): {}",
        filtered.raw_union()
    );

    // Fig. 2 (d): a monitor delay element shifts the range into the window
    let configs = ConfigSet::paper_defaults(clock.t_nom);
    let placement = MonitorPlacement::full(&circuit);
    println!("\ndetection under each monitor configuration (clipped to the window):");
    for config in configs.configs() {
        let set = shifted_detection(&filtered, &placement, &configs, config, &clock);
        println!(
            "  config {:>3} (+{:>5.1} ps): {set}",
            config.to_string(),
            configs.shift(config)
        );
    }
    let off = shifted_detection(&filtered, &placement, &configs, MonitorConfig::Off, &clock);
    let best = shifted_detection(
        &filtered,
        &placement,
        &configs,
        MonitorConfig::Delay(3),
        &clock,
    );
    if off.is_empty() && !best.is_empty() {
        println!("\n→ invisible to conventional FAST, rescued by the 1/3·t_nom delay element");
    }

    // Fig. 5: discretization over several faults
    println!("\nobservation-time discretization over every fault of the circuit:");
    let mut ranges = Vec::new();
    for (_, f) in faults.iter() {
        let d = engine.response_diff(&base, f, clock.t_nom);
        let mut dr = fastmon::faults::DetectionRange::new();
        for (op, set) in d {
            dr.push(op, set);
        }
        let best = shifted_detection(&dr, &placement, &configs, MonitorConfig::Delay(3), &clock);
        let any = off_union(&dr, &placement, &configs, &clock).union(&best);
        if !any.is_empty() {
            ranges.push(any);
        }
    }
    let cells = elementary_intervals(&ranges);
    println!(
        "  {} elementary intervals from {} detectable faults",
        cells.len(),
        ranges.len()
    );
    let candidates = discretize(&ranges);
    println!(
        "  candidate capture periods: {:?}",
        candidates.iter().map(|t| t.round()).collect::<Vec<_>>()
    );
    Ok(())
}

fn off_union(
    dr: &fastmon::faults::DetectionRange,
    placement: &MonitorPlacement,
    configs: &ConfigSet,
    clock: &ClockSpec,
) -> fastmon::faults::IntervalSet {
    shifted_detection(dr, placement, configs, MonitorConfig::Off, clock)
}
