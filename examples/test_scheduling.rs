//! Two-step test-schedule optimization (Sec. IV of the paper): compare the
//! conventional baseline, the greedy heuristic and the exact 0-1 ILP, and
//! show the coverage/test-time trade-off of Table III.
//!
//! ```text
//! cargo run --release --example test_scheduling
//! ```

use fastmon::core::{FlowConfig, HdfTestFlow, Solver};
use fastmon::netlist::generate::CircuitProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a scaled-down s13207 stand-in: register-dominated, big monitor gains
    let profile = CircuitProfile::named("s13207")
        .expect("known profile")
        .scaled(0.5);
    let circuit = profile.generate(11)?;

    let config = FlowConfig {
        max_faults: Some(4000),
        ..FlowConfig::default()
    };
    let flow = HdfTestFlow::prepare(&circuit, &config);
    let patterns = flow.generate_patterns(Some(profile.pattern_budget));
    let analysis = flow.analyze(&patterns);
    println!(
        "{}: |P| = {}, targets |Φ_tar| = {}\n",
        circuit.name(),
        patterns.len(),
        analysis.targets.len()
    );

    // --- step 1+2 with the three solvers --------------------------------
    println!("solver        |F|   |S|   PLL-aware test time (relock = 1000 apps)");
    println!("------------- ----- ----- --------------------------------------");
    for (name, solver) in [
        ("conventional", Solver::Conventional),
        ("greedy heur.", Solver::Greedy),
        ("proposed ILP", Solver::Ilp),
    ] {
        let schedule = flow.schedule(&analysis, solver);
        println!(
            "{name:<13} {:>5} {:>5} {:>10.0}",
            schedule.num_frequencies(),
            schedule.num_applications(),
            schedule.test_time(1000.0)
        );
        if solver == Solver::Ilp {
            assert!(schedule.covers_all_targets(&analysis));
        }
    }

    // --- naive vs optimized (Table II columns 6-8) ------------------------
    let ilp = flow.schedule(&analysis, Solver::Ilp);
    let naive = ilp.num_frequencies() * patterns.len() * flow.configs().len();
    println!(
        "\nnaive application count |F|·|P|·|C| = {naive}, optimized |S| = {} ({:.1} % saved)",
        ilp.num_applications(),
        (1.0 - ilp.num_applications() as f64 / naive as f64) * 100.0
    );

    // --- coverage targets (Table III) -------------------------------------
    println!("\ncoverage target → schedule:");
    println!("cov    |F|   |S|   achieved");
    for cov in [1.0, 0.99, 0.98, 0.95, 0.90] {
        let s = flow.schedule_with_coverage(&analysis, Solver::Ilp, cov);
        let covered: usize = s.entries.iter().map(|e| e.faults.len()).sum();
        println!(
            "{:>4.0}% {:>5} {:>5}   {:>6.1}%",
            cov * 100.0,
            s.num_frequencies(),
            s.num_applications(),
            100.0 * covered as f64 / analysis.targets.len().max(1) as f64
        );
    }
    Ok(())
}
