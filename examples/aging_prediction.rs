//! Wear-out and early-life failure prediction with programmable delay
//! monitors — the lifecycle story of Fig. 2 of the paper.
//!
//! A device ages year by year (BTI-like power-law degradation); one gate is
//! additionally a *marginal* early-life device whose delay grows fast. The
//! programmable monitor at the critical register first senses the gradual
//! wear-out with its widest guard band, the delay element is then
//! re-programmed to a narrower band (after hypothetical countermeasures),
//! and finally the narrow band flags the imminent failure.
//!
//! ```text
//! cargo run --release --example aging_prediction
//! ```

use fastmon::monitor::{guard, inject_marginality, AgingModel, ConfigSet};
use fastmon::netlist::generate::GeneratorConfig;
use fastmon::sim::{SimEngine, Stimulus};
use fastmon::timing::{ClockSpec, DelayAnnotation, DelayModel, Sta};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = GeneratorConfig::new("device")
        .inputs(12)
        .outputs(6)
        .flip_flops(32)
        .gates(400)
        .depth(14)
        .generate(7)?;

    // fresh silicon: delays with process variation, clock from STA
    let model = DelayModel::nangate45_like();
    let fresh = DelayAnnotation::with_variation(&circuit, &model, 0.2, 1);
    let sta = Sta::analyze(&circuit, &fresh);
    let clock = ClockSpec::from_sta(&sta, 3.0);
    let configs = ConfigSet::paper_defaults(clock.t_nom);
    println!(
        "device: {} gates, t_nom = {:.0} ps, guard bands {:?} ps",
        circuit.combinational_nodes().count(),
        clock.t_nom,
        configs
            .delays()
            .iter()
            .map(|d| d.round())
            .collect::<Vec<_>>()
    );

    // monitor the busiest observation point: the end of the critical path
    let critical_op = circuit
        .observe_points()
        .iter()
        .max_by(|a, b| {
            sta.max_arrival(a.driver)
                .total_cmp(&sta.max_arrival(b.driver))
        })
        .expect("circuit has observation points");
    let monitored = critical_op.driver;
    println!(
        "monitor placed at `{}` (arrival {:.0} ps)\n",
        circuit.node(monitored).name(),
        sta.max_arrival(monitored)
    );

    // a marginal (early-life weak) gate on the critical path: extra delay
    // that magnifies with stress
    let weak = circuit
        .node(monitored)
        .fanins()
        .first()
        .copied()
        .expect("critical op has a driver cone");

    // find a two-vector workload that actually exercises a long path into
    // the monitored register (random vectors rarely sensitize the critical
    // path, just like in silicon)
    // target: a fresh settle slack just outside the widest guard band, so
    // the young device is healthy and degradation walks through the bands
    let fresh_engine = SimEngine::new(&circuit, &fresh);
    let target = configs.max_shift() + 30.0;
    let slack_of = |st: &Stimulus| {
        let r = fresh_engine.simulate(st);
        guard::settle_slack(r.wave(monitored), clock.t_nom)
    };
    let stim = (0..400u64)
        .map(|s| {
            Stimulus::from_fn(&circuit, |id| {
                let h = |x: u64| {
                    (id.index() as u64)
                        .wrapping_mul(0x9e37_79b9)
                        .wrapping_add(x.wrapping_mul(0x85eb_ca6b))
                };
                (
                    h(s).count_ones() % 2 == 0,
                    h(s ^ 0xffff).count_ones() % 2 == 0,
                )
            })
        })
        .min_by(|x, y| {
            let score = |st: &Stimulus| {
                let s = slack_of(st);
                if s >= target {
                    s - target
                } else {
                    10.0 * (target - s)
                }
            };
            score(x).total_cmp(&score(y))
        })
        .expect("non-empty search");
    let fresh_result = fresh_engine.simulate(&stim);
    println!(
        "workload settles the monitored signal {:.0} ps before the clock edge (fresh)\n",
        guard::settle_slack(fresh_result.wave(monitored), clock.t_nom)
    );
    let aging = AgingModel::bti_like();

    println!("year | settle slack |   alerts (guard band ps)   | state");
    println!("-----|--------------|----------------------------|---------------------");
    let mut first_alert: Option<usize> = None;
    for year in 0..=12 {
        // gradual wear-out + fast-growing marginality of the weak gate
        let aged = aging.aged(&circuit, &fresh, f64::from(year), 99);
        let marginal_extra = 4.0 * f64::from(year).powf(1.5); // early-life defect
        let annot = inject_marginality(&circuit, &aged, weak, marginal_extra);

        let engine = SimEngine::new(&circuit, &annot);
        let result = engine.simulate(&stim);
        let wave = result.wave(monitored);
        let slack = guard::settle_slack(wave, clock.t_nom);
        let violated = guard::first_violated(wave, clock.t_nom, configs.delays());

        // lifecycle policy from Fig. 2: young device watches the widest
        // band; once it alerts, countermeasures re-program towards the
        // narrowest band, whose violation means imminent failure
        let state = match violated {
            Some(0) => "IMMINENT FAILURE — retire the device",
            Some(_) => {
                if first_alert.is_none() {
                    first_alert = Some(year as usize);
                }
                "aging alert — enable countermeasures"
            }
            None => "healthy",
        };
        let bands: Vec<String> = configs
            .delays()
            .iter()
            .map(|&d| {
                if guard::alert(wave, clock.t_nom, d) {
                    "!".into()
                } else {
                    "·".into()
                }
            })
            .collect();
        println!(
            "{year:>4} | {slack:>9.0} ps | bands {:>2?} violated≥{:<6} | {state}",
            bands.join(""),
            violated.map_or("none".to_owned(), |i| format!("d{}", i + 1)),
        );
    }
    if let Some(y) = first_alert {
        println!("\nfirst wear-out alert in year {y} — well before functional failure");
    }
    Ok(())
}
