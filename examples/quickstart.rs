//! End-to-end quickstart: run the full HDF test flow of the paper on a
//! synthetic full-scan circuit.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fastmon::core::{report, FlowConfig, HdfTestFlow, Solver};
use fastmon::netlist::generate::GeneratorConfig;
use fastmon::netlist::CircuitStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a mid-sized synthetic full-scan design (stand-in for an industrial
    // netlist; see DESIGN.md for the substitution rationale)
    let circuit = GeneratorConfig::new("demo")
        .inputs(16)
        .outputs(8)
        .flip_flops(64)
        .gates(900)
        .depth(16)
        .generate(42)?;
    println!(
        "circuit: {} — {}",
        circuit.name(),
        CircuitStats::of(&circuit)
    );

    // prepare: process-varied delays, STA, clock (t_nom = 1.05·cpl,
    // f_max = 3·f_nom), monitors at 25 % of the longest-path observation
    // points with delay elements {0.05, 0.10, 0.15, 1/3}·t_nom
    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    let clock = flow.clock();
    println!(
        "clock: t_nom = {:.1} ps, FAST window down to t_min = {:.1} ps, |M| = {}",
        clock.t_nom,
        clock.t_min,
        flow.placement().count()
    );
    let counts = flow.counts();
    println!(
        "faults: {} initial → {} at-speed detectable, {} timing redundant, {} FAST candidates",
        counts.initial, counts.at_speed_detectable, counts.timing_redundant, counts.candidates
    );

    // transition-fault ATPG + timing-accurate fault simulation
    let patterns = flow.generate_patterns(Some(64));
    println!("patterns: |P| = {}", patterns.len());
    let analysis = flow.analyze(&patterns);
    println!(
        "detected: {} conventional FAST vs {} with monitors (+{:.1} %), |Φ_tar| = {}",
        analysis.detected_conv(),
        analysis.detected_prop(),
        report::table1_row(&flow, &analysis, patterns.len()).gain_percent,
        analysis.targets.len()
    );

    // two-step schedule optimization (0-1 ILP)
    let schedule = flow.schedule(&analysis, Solver::Ilp);
    assert!(schedule.covers_all_targets(&analysis));
    println!(
        "schedule: {} FAST frequencies, {} pattern-configuration applications",
        schedule.num_frequencies(),
        schedule.num_applications()
    );
    for entry in schedule.entries.iter().take(4) {
        println!(
            "  capture @ {:>7.1} ps ({:.2}·f_nom): {} applications, {} faults",
            entry.period,
            clock.t_nom / entry.period,
            entry.applications.len(),
            entry.faults.len()
        );
    }
    if schedule.entries.len() > 4 {
        println!("  … and {} more frequencies", schedule.entries.len() - 4);
    }
    Ok(())
}
