//! Localizing a marginal device from FAST observations — the detection-range
//! machinery of the paper, run backwards.
//!
//! A device comes back from the field after its monitors raised early-life
//! alerts. We re-screen it with the optimized FAST schedule, record which
//! `(pattern, configuration, frequency)` applications fail, and rank the
//! candidate small delay faults by how well they explain the syndrome.
//!
//! ```text
//! cargo run --release --example diagnose_marginal
//! ```

use fastmon::core::{diagnose, predicted_observations, FlowConfig, HdfTestFlow, Solver};
use fastmon::netlist::generate::GeneratorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = GeneratorConfig::new("field_return")
        .inputs(12)
        .outputs(6)
        .flip_flops(40)
        .gates(500)
        .depth(14)
        .generate(23)?;

    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    let patterns = flow.generate_patterns(Some(48));
    let analysis = flow.analyze(&patterns);
    let schedule = flow.schedule(&analysis, Solver::Ilp);
    println!(
        "screening schedule: {} frequencies, {} applications over {} candidate faults",
        schedule.num_frequencies(),
        schedule.num_applications(),
        analysis.num_faults()
    );

    // the screening applications (what the tester would actually run)
    let mut applications = Vec::new();
    for entry in &schedule.entries {
        for &(p, c) in &entry.applications {
            applications.push((p, c, entry.period));
        }
    }

    // ground truth: secretly pick a marginal device (a target fault) and
    // synthesize its syndrome
    let truth = analysis.targets[analysis.targets.len() / 2];
    let fault = analysis
        .faults
        .fault(fastmon::faults::FaultId::from_index(truth));
    println!("\n(injected ground truth: fault {fault} — index {truth})");
    let observations = predicted_observations(&flow, &analysis, truth, &applications);
    let fails = observations.iter().filter(|o| o.failed).count();
    println!(
        "observed syndrome: {fails} failing of {} applications\n",
        observations.len()
    );

    // diagnose
    let ranking = diagnose(&flow, &analysis, &observations);
    println!(
        "top candidates (of {} with any explanatory power):",
        ranking.len()
    );
    println!("rank  fault                     score  explains  misses  contradicts");
    for (i, cand) in ranking.iter().take(8).enumerate() {
        let f = analysis
            .faults
            .fault(fastmon::faults::FaultId::from_index(cand.fault));
        let marker = if cand.fault == truth {
            "  ← injected"
        } else {
            ""
        };
        println!(
            "{:>4}  {:<24} {:>6.1} {:>9} {:>7} {:>12}{marker}",
            i + 1,
            f.to_string(),
            cand.score,
            cand.explained_fails,
            cand.missed_fails,
            cand.contradicted_passes,
        );
    }

    let best_score = ranking.first().map_or(0.0, |c| c.score);
    let truth_rank = ranking.iter().position(|c| c.fault == truth);
    match truth_rank {
        Some(r) if (ranking[r].score - best_score).abs() < 1e-9 => {
            let cohort = ranking
                .iter()
                .filter(|c| (c.score - best_score).abs() < 1e-9)
                .count();
            println!(
                "\n→ ground truth is in the top-score cohort ({cohort} equivalent candidates)"
            );
        }
        Some(r) => println!("\n→ ground truth ranked {} — syndrome too sparse", r + 1),
        None => println!("\n→ ground truth not recovered"),
    }
    Ok(())
}
