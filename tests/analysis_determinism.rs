//! The fault-simulation campaign must be bit-identical for any worker
//! thread count: work items are merged in fixed (pattern, chunk) order, so
//! `threads = 8` and `threads = 1` produce exactly the same analysis.

use fastmon::core::{DetectionAnalysis, FlowConfig, HdfTestFlow};
use fastmon::netlist::generate::CircuitProfile;
use fastmon::netlist::{library, Circuit};

fn analyze_with_threads(circuit: &Circuit, threads: usize) -> DetectionAnalysis {
    let config = FlowConfig {
        threads,
        max_faults: Some(400),
        ..FlowConfig::default()
    };
    let flow = HdfTestFlow::prepare(circuit, &config);
    let patterns = flow.generate_patterns(Some(24));
    flow.analyze(&patterns)
}

fn assert_bit_identical(circuit: &Circuit) {
    let single = analyze_with_threads(circuit, 1);
    let parallel = analyze_with_threads(circuit, 8);
    assert_eq!(single.num_patterns, parallel.num_patterns);
    assert_eq!(
        single.per_pattern, parallel.per_pattern,
        "per_pattern differs"
    );
    assert_eq!(single.raw_union, parallel.raw_union, "raw_union differs");
    assert_eq!(single.verdicts, parallel.verdicts, "verdicts differ");
    assert_eq!(single.targets, parallel.targets, "targets differ");
    assert_eq!(single.conv_range, parallel.conv_range, "conv_range differs");
    assert_eq!(single.fast_range, parallel.fast_range, "fast_range differs");
}

#[test]
fn s27_analysis_is_thread_count_invariant() {
    assert_bit_identical(&library::s27());
}

#[test]
fn paper_suite_stand_in_is_thread_count_invariant() {
    // a scaled-down p89k profile: same generator recipe as the paper
    // stand-ins, small enough for a test
    let profile = CircuitProfile::named("p89k")
        .expect("p89k is in the paper suite")
        .scaled(0.01);
    let circuit = profile.generate(7).expect("profile generates");
    assert_bit_identical(&circuit);
}
