//! Checkpoint/resume determinism: a fault-simulation campaign that is
//! interrupted between pattern bands and later resumed must produce
//! results bit-identical to an uninterrupted run.

use fastmon_core::{
    CheckpointError, CheckpointStore, DetectionAnalysis, FlowConfig, FlowError, HdfTestFlow,
};
use fastmon_netlist::generate::paper_suite;
use fastmon_netlist::{library, Circuit};

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fastmon-resume-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_identical(a: &DetectionAnalysis, b: &DetectionAnalysis) {
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.per_pattern, b.per_pattern);
    assert_eq!(a.raw_union, b.raw_union);
    assert_eq!(a.conv_range, b.conv_range);
    assert_eq!(a.fast_range, b.fast_range);
    assert_eq!(a.verdicts, b.verdicts);
    assert_eq!(a.targets, b.targets);
    assert_eq!(a.num_patterns, b.num_patterns);
}

/// Interrupts the campaign after `bands` checkpoint saves, then resumes it
/// and checks the result against the uninterrupted baseline.
fn interrupt_and_resume(circuit: &Circuit, config: &FlowConfig, tag: &str, bands: usize) {
    let flow = HdfTestFlow::prepare(circuit, config);
    let patterns = flow.generate_patterns(None);
    let baseline = flow.analyze(&patterns);

    let dir = scratch(tag);
    let path = dir.join(format!("{}-{bands}.fmck", circuit.name()));

    let interrupting = CheckpointStore::new(&path).with_interrupt_after(bands);
    let err = flow
        .analyze_resumable(&patterns, &interrupting)
        .expect_err("interruption hook must abort the campaign");
    assert!(
        matches!(
            err,
            FlowError::Checkpoint(CheckpointError::Interrupted { .. })
        ),
        "got {err:?}"
    );
    assert!(path.exists(), "a valid checkpoint must remain on disk");

    let store = CheckpointStore::new(&path);
    let resumed = flow
        .analyze_resumable(&patterns, &store)
        .expect("resume completes");
    assert_identical(&resumed, &baseline);
    assert!(
        !path.exists(),
        "checkpoint is removed after a successful run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn s27_resumes_bit_identically_from_two_interruption_points() {
    let circuit = library::s27();
    let config = FlowConfig {
        threads: 1,
        ..FlowConfig::default()
    };
    for bands in [1, 2] {
        interrupt_and_resume(&circuit, &config, "s27", bands);
    }
}

#[test]
fn scaled_stand_in_resumes_bit_identically_from_two_interruption_points() {
    let profile = paper_suite()
        .into_iter()
        .find(|p| p.name == "s9234")
        .expect("s9234 profile exists")
        .scaled(0.05);
    let circuit = profile.generate(7).expect("profile generates");
    let config = FlowConfig {
        threads: 2,
        max_faults: Some(150),
        ..FlowConfig::default()
    };
    for bands in [1, 3] {
        interrupt_and_resume(&circuit, &config, "stand-in", bands);
    }
}

#[test]
fn resume_is_thread_count_invariant() {
    // Interrupt a single-threaded campaign, resume it with four workers:
    // merge order is fixed, so the result must still be bit-identical.
    let circuit = library::s27();
    let base_cfg = FlowConfig {
        threads: 1,
        ..FlowConfig::default()
    };
    let flow = HdfTestFlow::prepare(&circuit, &base_cfg);
    let patterns = flow.generate_patterns(None);
    let baseline = flow.analyze(&patterns);

    let dir = scratch("threads");
    let path = dir.join("s27.fmck");
    let interrupting = CheckpointStore::new(&path).with_interrupt_after(1);
    flow.analyze_resumable(&patterns, &interrupting)
        .expect_err("interrupted");

    let wide_cfg = FlowConfig {
        threads: 4,
        ..FlowConfig::default()
    };
    let wide_flow = HdfTestFlow::prepare(&circuit, &wide_cfg);
    let resumed = wide_flow
        .analyze_resumable(&patterns, &CheckpointStore::new(&path))
        .expect("resume completes");
    assert_identical(&resumed, &baseline);
    std::fs::remove_dir_all(&dir).ok();
}
