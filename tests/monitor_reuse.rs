//! The paper's central claim, verified constructively: a hidden delay fault
//! whose effect dies before `t_min` at every output is invisible to
//! conventional FAST but becomes detectable once a programmable delay
//! monitor shifts its detection range into the observable window.

use fastmon::faults::{DetectionRange, Polarity, SmallDelayFault};
use fastmon::monitor::{
    at_speed_monitor_detectable, shifted_detection, ConfigSet, MonitorConfig, MonitorPlacement,
};
use fastmon::netlist::{CircuitBuilder, GateKind, PinRef};
use fastmon::sim::{SimEngine, Stimulus};
use fastmon::timing::{ClockSpec, DelayAnnotation, DelayModel, Sta};

/// One deep path (16 buffers) and one shallow XOR path converge on a
/// flip-flop; the nominal clock is set by the deep path.
fn mixed_cone() -> fastmon::netlist::Circuit {
    let mut b = CircuitBuilder::new("mixed");
    b.add("a", GateKind::Input, &[]);
    b.add("b", GateKind::Input, &[]);
    b.add("en", GateKind::Input, &[]);
    for i in 1..=16 {
        let prev = if i == 1 {
            "a".to_owned()
        } else {
            format!("d{}", i - 1)
        };
        b.add(format!("d{i}"), GateKind::Buf, &[prev.as_str()]);
    }
    b.add("shallow", GateKind::Xor, &["b", "en"]);
    b.add("mix", GateKind::And, &["d16", "shallow"]);
    b.add("q", GateKind::Dff, &["mix"]);
    b.add("po", GateKind::Buf, &["d16"]);
    b.mark_output("po");
    b.finish().expect("valid circuit")
}

struct Setup {
    circuit: fastmon::netlist::Circuit,
    annot: DelayAnnotation,
    clock: ClockSpec,
    configs: ConfigSet,
    range: DetectionRange,
}

fn setup() -> Setup {
    let circuit = mixed_cone();
    let annot = DelayAnnotation::nominal(&circuit, &DelayModel::nangate45_like());
    let sta = Sta::analyze(&circuit, &annot);
    let clock = ClockSpec::from_sta(&sta, 3.0);
    let configs = ConfigSet::paper_defaults(clock.t_nom);

    // rising launch on b (a = 1 keeps the deep side non-controlling)
    let a = circuit.find("a").expect("input a");
    let b_in = circuit.find("b").expect("input b");
    let stim = Stimulus::from_fn(&circuit, |id| (id == a, id == a || id == b_in));
    let engine = SimEngine::new(&circuit, &annot);
    let base = engine.simulate(&stim);

    let shallow = circuit.find("shallow").expect("gate");
    let fault = SmallDelayFault::new(
        PinRef::Output(shallow),
        Polarity::SlowToRise,
        6.0 * annot.sigma(shallow),
    );
    let mut range = DetectionRange::new();
    for (op, set) in engine.response_diff(&base, &fault, clock.t_nom) {
        range.push(op, set);
    }
    Setup {
        circuit,
        annot,
        clock,
        configs,
        range,
    }
}

#[test]
fn hidden_fault_is_invisible_to_conventional_fast() {
    let s = setup();
    assert!(!s.range.is_empty(), "the fault does produce a response");
    // every raw interval ends before t_min
    for (_, set) in s.range.iter() {
        for iv in set.iter() {
            assert!(
                iv.end <= s.clock.t_min,
                "interval {iv} inside the FAST window — construction broken"
            );
        }
    }
    let placement = MonitorPlacement::from_mask(vec![false; s.circuit.observe_points().len()]);
    let conv = shifted_detection(
        &s.range,
        &placement,
        &s.configs,
        MonitorConfig::Off,
        &s.clock,
    );
    assert!(conv.is_empty(), "conventional FAST must not see it");
}

#[test]
fn monitor_shift_rescues_the_fault() {
    let s = setup();
    // monitor on the flip-flop D pin (a pseudo-output at a long path end)
    let mask: Vec<bool> = s
        .circuit
        .observe_points()
        .iter()
        .map(fastmon::netlist::ObservePoint::is_pseudo)
        .collect();
    let placement = MonitorPlacement::from_mask(mask);
    let with_d4 = shifted_detection(
        &s.range,
        &placement,
        &s.configs,
        MonitorConfig::Delay(3),
        &s.clock,
    );
    assert!(
        !with_d4.is_empty(),
        "the t_nom/3 delay element must shift the range into the window"
    );
    // and the shifted range lies inside the legal window
    for iv in with_d4.iter() {
        assert!(iv.start >= s.clock.t_min - 1e-9 && iv.end <= s.clock.t_nom + 1e-9);
    }
}

#[test]
fn placement_prefers_the_mixed_cone() {
    let s = setup();
    let sta = Sta::analyze(&s.circuit, &s.annot);
    let placement = MonitorPlacement::at_long_path_ends(&s.circuit, &sta, 0.5);
    // the flip-flop capturing `mix` ends the longest path: it must be
    // among the monitored half
    let mix = s.circuit.find("mix").expect("gate");
    let op_index = s
        .circuit
        .observe_points()
        .iter()
        .position(|op| op.driver == mix)
        .expect("mix is observed");
    assert!(placement.is_monitored(op_index));
}

#[test]
fn at_speed_monitor_detection_requires_late_ranges() {
    let s = setup();
    let placement = MonitorPlacement::full(&s.circuit);
    // the early-range fault is not at-speed detectable even with monitors
    assert!(!at_speed_monitor_detectable(
        &s.range, &placement, &s.configs, &s.clock
    ));
}
