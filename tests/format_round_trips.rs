//! Serialization round trips across crates: generated circuits survive
//! `.bench` text, annotations survive the SDF subset.

use fastmon::netlist::generate::{paper_suite, GeneratorConfig};
use fastmon::netlist::{bench, CircuitStats};
use fastmon::timing::{sdf, DelayAnnotation, DelayModel, Sta};

#[test]
fn generated_circuits_round_trip_through_bench() {
    for seed in 0..5u64 {
        let circuit = GeneratorConfig::new(format!("rt{seed}"))
            .gates(150 + 40 * seed as usize)
            .flip_flops(12)
            .inputs(8)
            .outputs(4)
            .depth(8 + seed as u32)
            .generate(seed)
            .expect("valid generator config");
        let text = bench::to_string(&circuit);
        let parsed = bench::parse(&text, circuit.name()).expect("own output parses");
        assert_eq!(
            CircuitStats::of(&parsed),
            CircuitStats::of(&circuit),
            "seed {seed}"
        );
        // same topology: every node, same kind and fanin names
        for (id, node) in circuit.iter() {
            let pid = parsed.find(node.name()).expect("node survives");
            assert_eq!(parsed.node(pid).kind(), node.kind());
            let orig: Vec<&str> = node
                .fanins()
                .iter()
                .map(|&f| circuit.node(f).name())
                .collect();
            let back: Vec<&str> = parsed
                .node(pid)
                .fanins()
                .iter()
                .map(|&f| parsed.node(f).name())
                .collect();
            assert_eq!(
                orig,
                back,
                "fanins of {} seed {seed}",
                circuit.node(id).name()
            );
        }
    }
}

#[test]
fn scaled_profiles_round_trip_through_bench() {
    for profile in paper_suite().iter().take(3) {
        let small = profile.scaled(0.02);
        let circuit = small.generate(1).expect("scaled profile generates");
        let text = bench::to_string(&circuit);
        let parsed = bench::parse(&text, circuit.name()).expect("parses");
        assert_eq!(parsed.len(), circuit.len());
    }
}

#[test]
fn sdf_round_trip_preserves_sta() {
    let circuit = GeneratorConfig::new("sdf_rt")
        .gates(200)
        .flip_flops(16)
        .inputs(8)
        .outputs(4)
        .depth(10)
        .generate(3)
        .expect("valid generator config");
    let annot = DelayAnnotation::with_variation(&circuit, &DelayModel::nangate45_like(), 0.2, 7);
    let text = sdf::to_string(&circuit, &annot);
    let parsed = sdf::parse(&text, &circuit, 0.2).expect("own output parses");

    // identical static timing from the round-tripped annotation
    let before = Sta::analyze(&circuit, &annot);
    let after = Sta::analyze(&circuit, &parsed);
    assert!(
        (before.critical_path_length() - after.critical_path_length()).abs() < 1e-2,
        "cpl drifted: {} vs {}",
        before.critical_path_length(),
        after.critical_path_length()
    );
    for id in circuit.node_ids() {
        assert!((annot.rise(id) - parsed.rise(id)).abs() < 1e-3);
        assert!((annot.fall(id) - parsed.fall(id)).abs() < 1e-3);
    }
}
