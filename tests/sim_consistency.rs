//! Cross-crate consistency: the timing-accurate waveform simulator, the
//! zero-delay steady-state evaluator and the bit-parallel ATPG grader must
//! agree wherever their domains overlap.

use fastmon::atpg::{transition_faults, TestPattern, TestSet, WordSim};
use fastmon::netlist::generate::GeneratorConfig;
use fastmon::netlist::{library, Circuit};
use fastmon::sim::SimEngine;
use fastmon::timing::{DelayAnnotation, DelayModel};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn random_patterns(circuit: &Circuit, n: usize, seed: u64) -> TestSet {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut set = TestSet::new(circuit);
    let w = set.sources().len();
    for _ in 0..n {
        set.push(TestPattern::new(
            (0..w).map(|_| rng.gen()).collect(),
            (0..w).map(|_| rng.gen()).collect(),
        ));
    }
    set
}

/// The waveform simulator's settled values equal the zero-delay evaluation
/// of the capture vector, on every net, for many random circuits/patterns.
#[test]
fn waveforms_settle_to_steady_state() {
    for seed in 0..4u64 {
        let circuit = GeneratorConfig::new(format!("sim{seed}"))
            .gates(180)
            .flip_flops(16)
            .inputs(8)
            .outputs(4)
            .depth(10)
            .generate(seed)
            .expect("valid generator config");
        let annot =
            DelayAnnotation::with_variation(&circuit, &DelayModel::nangate45_like(), 0.2, seed);
        let engine = SimEngine::new(&circuit, &annot);
        let patterns = random_patterns(&circuit, 8, seed);
        for i in 0..patterns.len() {
            let stim = patterns.stimulus(&circuit, i);
            let result = engine.simulate(&stim);
            let steady = circuit.eval_steady(|id| stim.capture(id));
            for id in circuit.node_ids() {
                assert_eq!(
                    result.wave(id).final_value(),
                    steady[id.index()],
                    "net {} pattern {i} seed {seed}",
                    circuit.node(id).name()
                );
            }
        }
    }
}

/// Zero-delay transition-fault detection (bit-parallel grader) must agree
/// with an independent scalar re-computation.
#[test]
fn wordsim_agrees_with_scalar_fault_insertion() {
    let circuit = library::s27();
    let patterns = random_patterns(&circuit, 40, 5);
    let ws = WordSim::new(&circuit, &patterns);
    let faults = transition_faults(&circuit);
    let sources = TestSet::source_order(&circuit);

    for fault in &faults {
        for p in 0..patterns.len() {
            let fast = ws.detect_word(fault, p / 64) >> (p % 64) & 1 == 1;
            // scalar reference
            let pat = patterns.pattern(p);
            let assigned = |bits: &Vec<bool>| {
                let bits = bits.clone();
                let sources = sources.clone();
                move |id: fastmon::netlist::NodeId| {
                    sources
                        .iter()
                        .position(|&s| s == id)
                        .map(|k| bits[k])
                        .unwrap_or(false)
                }
            };
            let v1 = circuit.eval_steady(assigned(&pat.launch));
            let v2 = circuit.eval_steady(assigned(&pat.capture));
            let launch_ok = v1[fault.gate.index()] == fault.initial_value()
                && v2[fault.gate.index()] == fault.final_value();
            let slow = {
                // stuck-at-initial on the capture vector
                let mut faulty = vec![false; circuit.len()];
                for &id in circuit.topo_order() {
                    let node = circuit.node(id);
                    faulty[id.index()] = if id == fault.gate {
                        fault.initial_value()
                    } else {
                        match node.kind() {
                            fastmon::netlist::GateKind::Input | fastmon::netlist::GateKind::Dff => {
                                assigned(&pat.capture)(id)
                            }
                            kind if kind.is_combinational() => {
                                let ins: Vec<bool> =
                                    node.fanins().iter().map(|&fi| faulty[fi.index()]).collect();
                                kind.eval(&ins)
                            }
                            kind => kind.eval(&[]),
                        }
                    };
                }
                circuit
                    .observe_points()
                    .iter()
                    .any(|op| faulty[op.driver.index()] != v2[op.driver.index()])
            };
            assert_eq!(fast, launch_ok && slow, "{fault} pattern {p}");
        }
    }
}

/// Transition-fault detection in the zero-delay grader implies that the
/// timing simulator sees a *final-value* difference at capture time ∞ for
/// an infinitely slow fault — sanity link between the two fault models.
#[test]
fn graded_detection_shows_up_in_waveforms() {
    let circuit = library::s27();
    let annot = DelayAnnotation::nominal(&circuit, &DelayModel::nangate45_like());
    let engine = SimEngine::new(&circuit, &annot);
    let patterns = random_patterns(&circuit, 32, 9);
    let ws = WordSim::new(&circuit, &patterns);

    for fault in transition_faults(&circuit) {
        for p in 0..patterns.len() {
            if ws.detect_word(&fault, p / 64) >> (p % 64) & 1 != 1 {
                continue;
            }
            // a small-delay fault with a huge delta at the same site must
            // produce a response difference under the timing simulator
            let stim = patterns.stimulus(&circuit, p);
            let base = engine.simulate(&stim);
            let sdf = fastmon::faults::SmallDelayFault::new(
                fastmon::netlist::PinRef::Output(fault.gate),
                if fault.rising {
                    fastmon::faults::Polarity::SlowToRise
                } else {
                    fastmon::faults::Polarity::SlowToFall
                },
                1e6, // effectively a transition fault
            );
            let diffs = engine.response_diff(&base, &sdf, 1e7);
            assert!(
                !diffs.is_empty(),
                "{fault} detected by grader but silent in waveform sim (pattern {p})"
            );
        }
    }
}
