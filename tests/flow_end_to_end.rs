//! End-to-end integration tests of the full HDF test flow across all
//! crates: netlist generation → timing → ATPG → fault simulation → monitor
//! analysis → schedule optimization.

use fastmon::core::{FlowConfig, HdfTestFlow, Solver};
use fastmon::netlist::generate::GeneratorConfig;
use fastmon::netlist::library;

fn small_circuit(seed: u64) -> fastmon::netlist::Circuit {
    GeneratorConfig::new(format!("it{seed}"))
        .inputs(10)
        .outputs(5)
        .flip_flops(24)
        .gates(260)
        .depth(12)
        .generate(seed)
        .expect("valid generator config")
}

#[test]
fn full_pipeline_s27() {
    let circuit = library::s27();
    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    let patterns = flow.generate_patterns(None);
    let analysis = flow.analyze(&patterns);
    let schedule = flow.schedule(&analysis, Solver::Ilp);
    assert!(schedule.covers_all_targets(&analysis));
    // counters are consistent
    let counts = flow.counts();
    assert_eq!(
        counts.initial,
        counts.at_speed_detectable + counts.timing_redundant + counts.candidates
    );
    assert_eq!(analysis.num_faults(), counts.sampled);
}

#[test]
fn monitors_never_reduce_detection() {
    for seed in [1u64, 2, 3] {
        let circuit = small_circuit(seed);
        let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
        let patterns = flow.generate_patterns(Some(32));
        let analysis = flow.analyze(&patterns);
        assert!(
            analysis.detected_prop() >= analysis.detected_conv(),
            "seed {seed}: prop {} < conv {}",
            analysis.detected_prop(),
            analysis.detected_conv()
        );
        // every conv-detected fault is also prop-detected
        for v in &analysis.verdicts {
            assert!(!v.detected_conv || v.detected_prop);
        }
    }
}

#[test]
fn ilp_solver_never_worse_than_greedy() {
    let circuit = small_circuit(7);
    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    let patterns = flow.generate_patterns(Some(32));
    let analysis = flow.analyze(&patterns);
    let greedy = flow.select_frequencies_only(&analysis, Solver::Greedy, 0);
    let ilp = flow.select_frequencies_only(&analysis, Solver::Ilp, 0);
    assert!(ilp.periods.len() <= greedy.periods.len());
    // both must cover all targets
    assert_eq!(greedy.covered.len(), analysis.targets.len());
    assert_eq!(ilp.covered.len(), analysis.targets.len());
}

#[test]
fn schedules_are_verified_against_the_analysis() {
    let circuit = small_circuit(11);
    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    let patterns = flow.generate_patterns(Some(32));
    let analysis = flow.analyze(&patterns);
    let schedule = flow.schedule(&analysis, Solver::Ilp);
    assert!(schedule.covers_all_targets(&analysis));

    // every assigned fault must actually be detected by one of the entry's
    // applications at the entry's period
    for entry in &schedule.entries {
        for &fault in &entry.faults {
            let detected = entry.applications.iter().any(|&(p, c)| {
                analysis.detected_at(
                    fault,
                    p as usize,
                    c,
                    entry.period,
                    flow.placement(),
                    flow.configs(),
                    flow.clock(),
                )
            });
            assert!(
                detected,
                "fault {fault} not detected at period {}",
                entry.period
            );
        }
    }
}

#[test]
fn coverage_relaxation_shrinks_schedules() {
    let circuit = small_circuit(13);
    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    let patterns = flow.generate_patterns(Some(32));
    let analysis = flow.analyze(&patterns);
    let mut prev_f = usize::MAX;
    let mut prev_s = usize::MAX;
    for cov in [1.0, 0.99, 0.95, 0.9, 0.8] {
        let s = flow.schedule_with_coverage(&analysis, Solver::Ilp, cov);
        assert!(s.num_frequencies() <= prev_f, "cov {cov}");
        // application count may fluctuate slightly with frequency choice,
        // but is bounded by the previous level plus nothing
        assert!(s.num_applications() <= prev_s, "cov {cov}");
        let covered: usize = s.entries.iter().map(|e| e.faults.len()).sum();
        assert!(covered as f64 >= (cov - 1e-9) * analysis.targets.len() as f64 - 1.0);
        prev_f = s.num_frequencies();
        prev_s = s.num_applications();
    }
}

#[test]
fn flow_is_deterministic() {
    let circuit = small_circuit(17);
    let run = || {
        let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
        let patterns = flow.generate_patterns(Some(24));
        let analysis = flow.analyze(&patterns);
        let schedule = flow.schedule(&analysis, Solver::Ilp);
        (
            analysis.detected_conv(),
            analysis.detected_prop(),
            analysis.targets.len(),
            schedule.num_frequencies(),
            schedule.num_applications(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn broadside_patterns_drive_the_flow_too() {
    let circuit = small_circuit(19);
    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    let broadside = flow.generate_patterns_broadside(Some(32));
    assert!(!broadside.is_empty());
    for p in broadside.iter() {
        assert!(fastmon::atpg::broadside::is_broadside_consistent(
            &circuit, &broadside, p
        ));
    }
    let analysis = flow.analyze(&broadside);
    let schedule = flow.schedule(&analysis, Solver::Ilp);
    assert!(schedule.covers_all_targets(&analysis));
    // the enhanced-scan set detects at least as much
    let enhanced = flow.generate_patterns(Some(32));
    let enhanced_analysis = flow.analyze(&enhanced);
    assert!(enhanced_analysis.detected_prop() + 8 >= analysis.detected_prop());
}

#[test]
fn fig3_series_has_paper_shape() {
    // register-dominated stand-in: monitors must visibly lift coverage
    let circuit = GeneratorConfig::new("fig3it")
        .inputs(12)
        .outputs(6)
        .flip_flops(48)
        .gates(500)
        .depth(16)
        .shallow_capture_fraction(0.45)
        .generate(3)
        .expect("valid generator config");
    let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
    let patterns = flow.generate_patterns(Some(48));
    let analysis = flow.analyze(&patterns);
    let factors: Vec<f64> = (10..=30).map(|i| f64::from(i) / 10.0).collect();
    let series = flow.coverage_vs_fmax(&analysis, &factors);
    let last = series.last().expect("non-empty series");
    let first = series.first().expect("non-empty series");
    // coverage grows with f_max; monitors dominate conventional FAST
    assert!(last.conv_coverage > first.conv_coverage);
    assert!(
        last.prop_coverage >= last.conv_coverage + 0.1,
        "monitor gain too small: prop {} conv {}",
        last.prop_coverage,
        last.conv_coverage
    );
}
