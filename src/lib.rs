//! # fastmon
//!
//! A Rust reproduction of **"Using Programmable Delay Monitors for Wear-Out
//! and Early Life Failure Prediction"** (Liu, Schneider, Wunderlich — DATE
//! 2020): hidden-delay-fault testing with Faster-than-At-Speed Test (FAST)
//! and on-chip programmable delay monitors, including the two-step 0-1 ILP
//! test-schedule optimization.
//!
//! This meta-crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`netlist`] | `fastmon-netlist` | gate-level circuits, `.bench` I/O, synthetic generator |
//! | [`timing`] | `fastmon-timing` | delay models, process variation, SDF subset, STA |
//! | [`sim`] | `fastmon-sim` | waveform-accurate simulation, fault injection |
//! | [`faults`] | `fastmon-faults` | small-delay faults, interval sets, detection ranges |
//! | [`monitor`] | `fastmon-monitor` | programmable delay monitors, placement, aging |
//! | [`atpg`] | `fastmon-atpg` | transition-fault PODEM, fault simulation, compaction |
//! | [`ilp`] | `fastmon-ilp` | exact 0-1 set-cover solver + greedy baseline |
//! | [`core`] | `fastmon-core` | the paper's flow: analysis, discretization, scheduling |
//!
//! # Quickstart
//!
//! ```
//! use fastmon::core::{FlowConfig, HdfTestFlow, Solver};
//! use fastmon::netlist::library;
//!
//! // 1. a circuit (embedded ISCAS'89 s27; parse .bench or generate your own)
//! let circuit = library::s27();
//!
//! // 2. prepare the flow: delays, clocks, monitors at long path ends
//! let flow = HdfTestFlow::prepare(&circuit, &FlowConfig::default());
//!
//! // 3. transition-fault ATPG and timing-accurate fault simulation
//! let patterns = flow.generate_patterns(None);
//! let analysis = flow.analyze(&patterns);
//!
//! // 4. optimal FAST schedule: frequencies + pattern/monitor configurations
//! let schedule = flow.schedule(&analysis, Solver::Ilp);
//! assert!(schedule.covers_all_targets(&analysis));
//! println!(
//!     "{} frequencies, {} applications",
//!     schedule.num_frequencies(),
//!     schedule.num_applications()
//! );
//! ```

pub use fastmon_atpg as atpg;
pub use fastmon_core as core;
pub use fastmon_faults as faults;
pub use fastmon_ilp as ilp;
pub use fastmon_monitor as monitor;
pub use fastmon_netlist as netlist;
pub use fastmon_sim as sim;
pub use fastmon_timing as timing;
