//! `fastmon` — command-line front end for the monitor-assisted FAST flow.
//!
//! ```text
//! fastmon profiles
//! fastmon generate s13207 --scale 0.1 --seed 1 -o s13207_small.bench
//! fastmon stats circuit.bench
//! fastmon sdf circuit.bench --seed 1
//! fastmon flow circuit.bench --patterns 64 --solver ilp
//! ```

use std::process::ExitCode;

use fastmon::core::{FlowConfig, HdfTestFlow, Solver};
use fastmon::netlist::generate::{paper_suite, CircuitProfile};
use fastmon::netlist::{bench, Circuit, CircuitStats};
use fastmon::timing::{sdf, ClockSpec, DelayAnnotation, DelayModel, Sta};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("profiles") => cmd_profiles(),
        Some("generate") => cmd_generate(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("sdf") => cmd_sdf(&args[1..]),
        Some("flow") => cmd_flow(&args[1..]),
        Some("--help" | "-h") | None => {
            usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "fastmon — hidden-delay-fault FAST with programmable delay monitors\n\
         \n\
         USAGE:\n\
         \u{20}  fastmon profiles                         list built-in circuit profiles\n\
         \u{20}  fastmon generate <profile> [opts]        generate a synthetic stand-in\n\
         \u{20}      --scale <f>   size factor (default 1.0)\n\
         \u{20}      --seed <n>    generator seed (default 1)\n\
         \u{20}      -o <file>     write .bench (default: stdout)\n\
         \u{20}  fastmon stats <file.bench>               circuit + timing statistics\n\
         \u{20}  fastmon sdf <file.bench> [--seed <n>]    emit an SDF delay annotation\n\
         \u{20}  fastmon flow <file.bench> [opts]         run the full HDF test flow\n\
         \u{20}      --patterns <n>  pattern budget (default: ATPG decides)\n\
         \u{20}      --solver <s>    ilp | greedy | conv (default ilp)\n\
         \u{20}      --seed <n>      flow seed (default 1)"
    );
}

fn opt_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.windows(2).find(|w| w[0] == key).map(|w| w[1].as_str())
}

fn parse_opt<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> Result<T, String> {
    match opt_value(args, key) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value `{v}` for {key}")),
        None => Ok(default),
    }
}

fn load_circuit(path: &str) -> Result<Circuit, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit")
        .to_owned();
    bench::parse(&text, name).map_err(|e| e.to_string())
}

fn cmd_profiles() -> Result<(), String> {
    println!(
        "{:<8} {:>8} {:>6} {:>5} {:>5} {:>6} {:>5}",
        "name", "gates", "FFs", "PIs", "POs", "|P|", "depth"
    );
    for p in paper_suite() {
        println!(
            "{:<8} {:>8} {:>6} {:>5} {:>5} {:>6} {:>5}",
            p.name, p.gates, p.flip_flops, p.inputs, p.outputs, p.pattern_budget, p.depth
        );
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let name = args
        .first()
        .ok_or("generate needs a profile name (see `fastmon profiles`)")?;
    let profile = CircuitProfile::named(name).ok_or_else(|| format!("unknown profile `{name}`"))?;
    let scale: f64 = parse_opt(args, "--scale", 1.0)?;
    let seed: u64 = parse_opt(args, "--seed", 1)?;
    let circuit = profile
        .scaled(scale)
        .generate(seed)
        .map_err(|e| e.to_string())?;
    let text = bench::to_string(&circuit);
    match opt_value(args, "-o") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {} ({})", path, CircuitStats::of(&circuit));
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("stats needs a .bench file")?;
    let circuit = load_circuit(path)?;
    let stats = CircuitStats::of(&circuit);
    println!("{}: {stats}", circuit.name());
    let annot = DelayAnnotation::nominal(&circuit, &DelayModel::nangate45_like());
    let sta = Sta::analyze(&circuit, &annot);
    let clock = ClockSpec::from_sta(&sta, 3.0);
    println!(
        "nominal timing: cpl = {:.1} ps, t_nom = {:.1} ps, FAST window down to {:.1} ps",
        sta.critical_path_length(),
        clock.t_nom,
        clock.t_min
    );
    Ok(())
}

fn cmd_sdf(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("sdf needs a .bench file")?;
    let seed: u64 = parse_opt(args, "--seed", 1)?;
    let circuit = load_circuit(path)?;
    let annot = DelayAnnotation::with_variation(&circuit, &DelayModel::nangate45_like(), 0.2, seed);
    print!("{}", sdf::to_string(&circuit, &annot));
    Ok(())
}

fn cmd_flow(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("flow needs a .bench file")?;
    let circuit = load_circuit(path)?;
    let seed: u64 = parse_opt(args, "--seed", 1)?;
    let budget: usize = parse_opt(args, "--patterns", 0)?;
    let solver = match opt_value(args, "--solver").unwrap_or("ilp") {
        "ilp" => Solver::Ilp,
        "greedy" => Solver::Greedy,
        "conv" => Solver::Conventional,
        other => return Err(format!("unknown solver `{other}`")),
    };

    let config = FlowConfig {
        seed,
        ..FlowConfig::default()
    };
    let flow = HdfTestFlow::prepare(&circuit, &config);
    let counts = flow.counts();
    println!(
        "{}: {} — |M| = {}, t_nom = {:.1} ps",
        circuit.name(),
        CircuitStats::of(&circuit),
        flow.placement().count(),
        flow.clock().t_nom
    );
    println!(
        "faults: {} initial, {} at-speed, {} redundant, {} candidates",
        counts.initial, counts.at_speed_detectable, counts.timing_redundant, counts.candidates
    );
    let patterns = flow.generate_patterns((budget > 0).then_some(budget));
    println!("patterns: |P| = {}", patterns.len());
    let analysis = flow.analyze(&patterns);
    println!(
        "detected: conv {} / prop {}, targets |Φ_tar| = {}",
        analysis.detected_conv(),
        analysis.detected_prop(),
        analysis.targets.len()
    );
    let schedule = flow.schedule(&analysis, solver);
    println!(
        "schedule ({:?}): {} frequencies, {} applications",
        solver,
        schedule.num_frequencies(),
        schedule.num_applications()
    );
    for entry in &schedule.entries {
        println!(
            "  @ {:8.1} ps ({:.2}·f_nom): {:>4} applications, {:>5} faults",
            entry.period,
            flow.clock().t_nom / entry.period,
            entry.applications.len(),
            entry.faults.len()
        );
    }
    Ok(())
}
